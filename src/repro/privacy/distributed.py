"""Distributed differential privacy for bit-pushing histograms.

Section 3.3 of the paper observes that the data gathered by bit-pushing is
"essentially a collection of binary histograms (counts of 0 and 1 bits for
each bit index)", and that distributed-DP protocols for histograms apply
directly, with an ``O(2^b / (eps^2 n) * log(1/delta))`` mean-error bound --
a better dependence on ``n`` than the local model.

Two mechanisms from the paper's citations are implemented:

* :class:`BernoulliNoiseAggregator` (Balcer--Cheu style): alongside each real
  report, a calibrated number of Bernoulli(1/2) *noise bits* are blended
  into every per-bit count (in deployment each client would contribute a few;
  in the simulation the trusted aggregation layer draws them).  The server
  subtracts the expected noise to unbias.
* :class:`SampleAndThreshold` (Bharadwaj--Cormode style): the aggregator
  Bernoulli-samples the incoming reports and suppresses per-bit counts below
  a threshold; sampling itself provides the DP guarantee, and thresholding
  removes the small counts the theorem requires dropping.  Retained counts
  are divided by the sampling rate to unbias.

Both operate server-side on ``(sums, counts)`` produced by
:func:`repro.core.protocol.collect_bit_reports` (conceptually inside the
secure-aggregation boundary, which is why no per-client noise is needed) and
return unbiased per-bit mean estimates compatible with the rest of the
pipeline.
"""

from __future__ import annotations

import math

import numpy as np

from repro.exceptions import ConfigurationError
from repro.rng import ensure_rng

__all__ = ["BernoulliNoiseAggregator", "SampleAndThreshold"]


class BernoulliNoiseAggregator:
    """Distributed binary-histogram DP via Bernoulli noise addition.

    For each bit index, ``k`` noise bits drawn i.i.d. Bernoulli(1/2) are
    added to the count of 1-reports (and ``k`` to the total), where

        k = ceil(c * log(1/delta) / eps**2),

    the noise volume required for an (eps, delta) guarantee in the
    Balcer--Cheu analysis (``c = 8`` covers the constants for eps <= 1; we
    expose it as a parameter).  The debiased per-bit mean is

        m_hat = (noisy_ones - k/2) / count.

    Examples
    --------
    >>> agg = BernoulliNoiseAggregator(epsilon=1.0, delta=1e-6)
    >>> agg.noise_bits_per_index >= 1
    True
    """

    def __init__(self, epsilon: float, delta: float, noise_constant: float = 8.0) -> None:
        if not np.isfinite(epsilon) or epsilon <= 0:
            raise ConfigurationError(f"epsilon must be a positive finite float, got {epsilon}")
        if not 0.0 < delta < 1.0:
            raise ConfigurationError(f"delta must be in (0, 1), got {delta}")
        if noise_constant <= 0:
            raise ConfigurationError(f"noise_constant must be positive, got {noise_constant}")
        self.epsilon = float(epsilon)
        self.delta = float(delta)
        self.noise_constant = float(noise_constant)

    @property
    def noise_bits_per_index(self) -> int:
        """Number of Bernoulli(1/2) noise bits blended into each count."""
        return max(1, math.ceil(self.noise_constant * math.log(1.0 / self.delta) / self.epsilon**2))

    def privatize_bit_means(
        self,
        sums: np.ndarray,
        counts: np.ndarray,
        rng: np.random.Generator | int | None = None,
    ) -> np.ndarray:
        """Noise the per-bit 1-counts and return unbiased mean estimates.

        Bits with zero reports keep mean 0.0 (they were never queried, so no
        noise is needed to protect them).
        """
        gen = ensure_rng(rng)
        sums = np.asarray(sums, dtype=np.float64)
        counts = np.asarray(counts, dtype=np.float64)
        if sums.shape != counts.shape:
            raise ConfigurationError("sums and counts must have the same shape")
        k = self.noise_bits_per_index
        noise = gen.binomial(k, 0.5, size=sums.shape).astype(np.float64)
        means = np.zeros_like(sums)
        sampled = counts > 0
        means[sampled] = (sums[sampled] + noise[sampled] - k / 2.0) / counts[sampled]
        return means

    def expected_mean_noise_std(self, count: float) -> float:
        """Std. dev. of the noise term on one bit mean with ``count`` reports."""
        if count <= 0:
            return float("inf")
        return math.sqrt(self.noise_bits_per_index / 4.0) / count


class SampleAndThreshold:
    """Distributed DP via report sampling plus small-count suppression.

    Given a target ``epsilon`` and ``delta``, the aggregator keeps each
    incoming report independently with probability

        s = 1 - exp(-epsilon),

    and zeroes any per-bit 1-count that, after sampling, falls below

        tau = ceil(log(1/delta) / epsilon).

    This follows the Bharadwaj--Cormode sample-and-threshold recipe: the
    randomness of Bernoulli sampling alone provides (epsilon, delta)-DP once
    counts below the threshold are suppressed.  Surviving counts are divided
    by ``s`` to unbias.

    Examples
    --------
    >>> mech = SampleAndThreshold(epsilon=1.0, delta=1e-6)
    >>> 0.63 < mech.sample_rate < 0.64
    True
    >>> mech.threshold
    14
    """

    def __init__(self, epsilon: float, delta: float) -> None:
        if not np.isfinite(epsilon) or epsilon <= 0:
            raise ConfigurationError(f"epsilon must be a positive finite float, got {epsilon}")
        if not 0.0 < delta < 1.0:
            raise ConfigurationError(f"delta must be in (0, 1), got {delta}")
        self.epsilon = float(epsilon)
        self.delta = float(delta)

    @property
    def sample_rate(self) -> float:
        """Per-report retention probability ``s = 1 - e^(-eps)``."""
        return 1.0 - math.exp(-self.epsilon)

    @property
    def threshold(self) -> int:
        """Minimum post-sampling 1-count that survives suppression."""
        return math.ceil(math.log(1.0 / self.delta) / self.epsilon)

    def privatize_bit_means(
        self,
        sums: np.ndarray,
        counts: np.ndarray,
        rng: np.random.Generator | int | None = None,
    ) -> np.ndarray:
        """Sample reports, threshold tiny counts, return unbiased bit means.

        ``sums`` must be raw (integer) 1-counts -- sampling acts on
        individual reports, which only makes sense pre-debiasing.
        """
        gen = ensure_rng(rng)
        sums = np.asarray(sums, dtype=np.float64)
        counts = np.asarray(counts, dtype=np.float64)
        if sums.shape != counts.shape:
            raise ConfigurationError("sums and counts must have the same shape")
        if np.any(sums < 0) or np.any(sums > counts):
            raise ConfigurationError("sums must be raw 1-counts within [0, counts]")
        s = self.sample_rate
        ones = sums.astype(np.int64)
        zeros = (counts - sums).astype(np.int64)
        kept_ones = gen.binomial(ones, s).astype(np.float64)
        kept_zeros = gen.binomial(zeros, s).astype(np.float64)
        kept_ones[kept_ones < self.threshold] = 0.0
        kept_total = kept_ones + kept_zeros
        means = np.zeros_like(sums)
        sampled = kept_total > 0
        means[sampled] = kept_ones[sampled] / kept_total[sampled]
        return means
