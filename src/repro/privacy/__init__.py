"""Privacy mechanisms and accounting (paper Section 3.3).

* :class:`RandomizedResponse` -- the epsilon-LDP bit perturbation that plugs
  into every bit-pushing estimator;
* :class:`LaplaceMechanism` -- the classical additive-noise baseline;
* :class:`BernoulliNoiseAggregator`, :class:`SampleAndThreshold` --
  distributed-DP histogram mechanisms with better n-dependence than LDP;
* :class:`PrivacyAccountant`, :class:`BitMeter` -- the formal epsilon ledger
  and the worst-case one-bit-per-value meter.
"""

from repro.privacy.accountant import BitMeter, LedgerEntry, PrivacyAccountant
from repro.privacy.amplification import (
    amplified_epsilon_by_sampling,
    required_epsilon_for_sampling,
    shuffle_amplification_valid,
    shuffle_amplified_epsilon,
)
from repro.privacy.distributed import BernoulliNoiseAggregator, SampleAndThreshold
from repro.privacy.laplace import LaplaceMechanism
from repro.privacy.randomized_response import RandomizedResponse

__all__ = [
    "BernoulliNoiseAggregator",
    "BitMeter",
    "LaplaceMechanism",
    "LedgerEntry",
    "PrivacyAccountant",
    "RandomizedResponse",
    "SampleAndThreshold",
    "amplified_epsilon_by_sampling",
    "required_epsilon_for_sampling",
    "shuffle_amplification_valid",
    "shuffle_amplified_epsilon",
]
