"""repro -- bit-pushing: private and efficient federated numerical aggregation.

A from-scratch reproduction of Cormode, Markov & Srinivas, *Private and
Efficient Federated Numerical Aggregation* (EDBT 2024).  The package
provides:

* :mod:`repro.core` -- the bit-pushing protocols (basic, adaptive), variance
  estimation, bit squashing, and heavy-tail monitoring;
* :mod:`repro.privacy` -- randomized response, Laplace, distributed-DP
  histogram mechanisms, and privacy accounting/metering;
* :mod:`repro.baselines` -- subtractive dithering, piecewise, Duchi,
  randomized rounding, and Laplace-mean comparison methods;
* :mod:`repro.federated` -- a client/server round simulator with dropout,
  cohorts, multi-value semantics, and secure aggregation;
* :mod:`repro.data` -- synthetic, census-style, and telemetry workloads;
* :mod:`repro.attacks` -- poisoning adversaries;
* :mod:`repro.metrics`, :mod:`repro.experiments` -- the evaluation harness
  that regenerates every figure in the paper.

Quickstart::

    import numpy as np
    from repro import AdaptiveBitPushing, FixedPointEncoder

    ages = np.random.default_rng(0).normal(35, 22, size=10_000).clip(0)
    encoder = FixedPointEncoder.for_integers(n_bits=7)
    estimate = AdaptiveBitPushing(encoder).estimate(ages, rng=0)
    print(estimate.value)      # ~35, from one bit per client
"""

from repro.core import (
    AdaptiveBitPushing,
    BasicBitPushing,
    BitSamplingSchedule,
    CovarianceEstimator,
    FederatedHistogram,
    FixedPointEncoder,
    GeometricMeanEstimator,
    HighBitMonitor,
    MeanEstimate,
    MomentEstimator,
    QuantileEstimator,
    VarianceEstimate,
    VarianceEstimator,
    VectorMeanEstimator,
    estimate_mean,
)
from repro.exceptions import (
    CohortTooSmallError,
    ConfigurationError,
    DataGenerationError,
    EncodingError,
    PrivacyBudgetExceeded,
    ProtocolError,
    ReproError,
    SecureAggregationError,
)
from repro.privacy import (
    BernoulliNoiseAggregator,
    BitMeter,
    LaplaceMechanism,
    PrivacyAccountant,
    RandomizedResponse,
    SampleAndThreshold,
)

__version__ = "1.0.0"

__all__ = [
    "AdaptiveBitPushing",
    "BasicBitPushing",
    "BernoulliNoiseAggregator",
    "BitMeter",
    "BitSamplingSchedule",
    "CohortTooSmallError",
    "ConfigurationError",
    "CovarianceEstimator",
    "DataGenerationError",
    "EncodingError",
    "FederatedHistogram",
    "FixedPointEncoder",
    "GeometricMeanEstimator",
    "HighBitMonitor",
    "LaplaceMechanism",
    "MeanEstimate",
    "MomentEstimator",
    "PrivacyAccountant",
    "PrivacyBudgetExceeded",
    "ProtocolError",
    "QuantileEstimator",
    "RandomizedResponse",
    "ReproError",
    "SampleAndThreshold",
    "SecureAggregationError",
    "VarianceEstimate",
    "VarianceEstimator",
    "VectorMeanEstimator",
    "estimate_mean",
    "__version__",
]
