"""Poisoning adversaries against bit-pushing (paper Sections 3.1 and 5).

An LDP aggregate averages over all client reports, so no single client can
move it much -- *unless* clients choose which bit to report.  Under local
randomness an adversary can claim its draw landed on the most significant
bit and deterministically send 1, gaining leverage ``2**b_max / p_top``
per corrupted client.  Under central randomness the server fixes each
client's bit index, so the worst a liar can do is flip its one assigned
bit.  This module implements both adversaries so the ablation bench can
quantify the gap, which is the paper's argument for central randomness.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.encoding import FixedPointEncoder
from repro.core.protocol import bit_means_from_stats
from repro.core.sampling import BitSamplingSchedule, central_assignment, local_assignment
from repro.exceptions import ConfigurationError
from repro.rng import ensure_rng

__all__ = ["PoisoningOutcome", "poisoned_estimate"]

_STRATEGIES = ("msb_ones", "assigned_ones", "assigned_zeros")
_RANDOMNESS = ("central", "local")


@dataclass(frozen=True)
class PoisoningOutcome:
    """Result of one poisoned aggregation run."""

    estimate: float
    honest_estimate: float
    true_mean: float
    n_adversaries: int
    randomness: str
    strategy: str

    @property
    def attack_shift(self) -> float:
        """How far the attack moved the estimate vs the same-randomness honest run."""
        return self.estimate - self.honest_estimate


def poisoned_estimate(
    values: np.ndarray,
    encoder: FixedPointEncoder,
    adversary_fraction: float,
    randomness: str = "local",
    strategy: str = "msb_ones",
    schedule: BitSamplingSchedule | None = None,
    rng: np.random.Generator | int | None = None,
) -> PoisoningOutcome:
    """Run basic bit-pushing with a fraction of adversarial clients.

    Parameters
    ----------
    values:
        Honest clients' true values (adversaries ignore theirs).
    encoder:
        Fixed-point encoding.
    adversary_fraction:
        Fraction of the cohort controlled by the attacker.
    randomness:
        ``"local"`` -- clients pick their own bit, so adversaries claim the
        top bit; ``"central"`` -- the server assigns bits, so adversaries
        can only lie about their assigned bit's value.
    strategy:
        * ``"msb_ones"``: report 1, on the most significant schedulable bit
          if the adversary controls the choice (the paper's example);
        * ``"assigned_ones"`` / ``"assigned_zeros"``: always report 1 / 0 on
          whatever bit applies.
    schedule:
        Sampling schedule (default: the Eq. 7 ``p_j \\propto 2**j``).
    rng:
        Randomness for assignment and honest reporting.

    Returns both the attacked and an honest same-randomness estimate, so
    callers can isolate the attack-induced shift from sampling noise.
    """
    if not 0.0 <= adversary_fraction < 1.0:
        raise ConfigurationError(
            f"adversary_fraction must be in [0, 1), got {adversary_fraction}"
        )
    if randomness not in _RANDOMNESS:
        raise ConfigurationError(f"randomness must be one of {_RANDOMNESS}")
    if strategy not in _STRATEGIES:
        raise ConfigurationError(f"strategy must be one of {_STRATEGIES}")
    gen = ensure_rng(rng)
    values = np.asarray(values, dtype=np.float64)
    n = int(values.size)
    if n == 0:
        raise ConfigurationError("need at least one client")
    schedule = schedule or BitSamplingSchedule.weighted(encoder.n_bits, alpha=1.0)
    if schedule.n_bits != encoder.n_bits:
        raise ConfigurationError("schedule width must match the encoder")

    encoded = encoder.encode(values)
    if randomness == "central":
        assignment = central_assignment(n, schedule, gen)
    else:
        assignment = local_assignment(n, schedule, gen)
    honest_bits = ((encoded >> assignment.astype(np.uint64)) & np.uint64(1)).astype(np.float64)

    n_adv = int(round(adversary_fraction * n))
    adversaries = gen.permutation(n)[:n_adv]

    attacked_assignment = assignment.copy()
    attacked_bits = honest_bits.copy()
    top_bit = int(schedule.support()[-1])
    if strategy == "msb_ones":
        if randomness == "local":
            # Only local randomness lets the adversary pick its bit index.
            attacked_assignment[adversaries] = top_bit
        attacked_bits[adversaries] = 1.0
    elif strategy == "assigned_ones":
        attacked_bits[adversaries] = 1.0
    else:  # assigned_zeros
        attacked_bits[adversaries] = 0.0

    def reconstruct(assign: np.ndarray, bits: np.ndarray) -> float:
        sums = np.bincount(assign, weights=bits, minlength=encoder.n_bits)
        counts = np.bincount(assign, minlength=encoder.n_bits)
        means = bit_means_from_stats(sums, counts)
        return encoder.decode_scalar(float(encoder.powers @ means))

    return PoisoningOutcome(
        estimate=reconstruct(attacked_assignment, attacked_bits),
        honest_estimate=reconstruct(assignment, honest_bits),
        true_mean=float(values.mean()),
        n_adversaries=n_adv,
        randomness=randomness,
        strategy=strategy,
    )
