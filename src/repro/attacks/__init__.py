"""Adversarial models: poisoning attacks on bit-pushing."""

from repro.attacks.poisoning import PoisoningOutcome, poisoned_estimate

__all__ = ["PoisoningOutcome", "poisoned_estimate"]
