"""Piecewise mechanism (Wang et al., ICDE 2019) for LDP mean estimation.

The "piecewise" baseline of the paper's Figure 3.  For an input
``t in [-1, 1]`` the client reports a value in ``[-C, C]`` with a
piecewise-constant density: values near ``t`` (the window ``[l(t), r(t)]``
of width ``C - 1``) are reported with the high density, values outside with
the low density.  The report is an unbiased estimate of ``t`` with variance
lower than Duchi's mechanism for moderate-to-large epsilon.

Standard formulas (Wang et al., Section III-B):

    C    = (e^(eps/2) + 1) / (e^(eps/2) - 1)
    l(t) = (C + 1)/2 * t - (C - 1)/2
    r(t) = l(t) + C - 1
    P(report in [l, r]) = e^(eps/2) / (e^(eps/2) + 1)
"""

from __future__ import annotations

import math

import numpy as np

from repro.baselines.base import RangeMeanEstimator
from repro.exceptions import ConfigurationError

__all__ = ["PiecewiseMechanism"]


class PiecewiseMechanism(RangeMeanEstimator):
    """Epsilon-LDP mean estimation with the piecewise-constant mechanism.

    Examples
    --------
    >>> import numpy as np
    >>> est = PiecewiseMechanism(low=0.0, high=100.0, epsilon=2.0)
    >>> values = np.full(100_000, 30.0)
    >>> abs(est.estimate(values, rng=5).value - 30.0) < 2.0
    True
    """

    method = "piecewise"

    def __init__(self, low: float, high: float, epsilon: float) -> None:
        super().__init__(low, high)
        if not np.isfinite(epsilon) or epsilon <= 0:
            raise ConfigurationError(f"epsilon must be a positive finite float, got {epsilon}")
        self.epsilon = float(epsilon)
        half = math.exp(self.epsilon / 2.0)
        #: Output-domain half-width C = (e^(eps/2)+1)/(e^(eps/2)-1).
        self.C = (half + 1.0) / (half - 1.0)
        #: Probability the report lands in the high-density window.
        self.p_window = half / (half + 1.0)

    # ------------------------------------------------------------------
    def perturb(self, t: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        """Privatize inputs ``t in [-1, 1]``; each output is unbiased for its input."""
        t = np.asarray(t, dtype=np.float64)
        if t.size and (t.min() < -1.0 - 1e-9 or t.max() > 1.0 + 1e-9):
            raise ConfigurationError("piecewise mechanism expects inputs in [-1, 1]")
        C = self.C
        left = (C + 1.0) / 2.0 * t - (C - 1.0) / 2.0
        right = left + (C - 1.0)

        in_window = rng.random(t.shape) < self.p_window
        out = np.empty_like(t)

        # High-density window: uniform on [l(t), r(t)].
        u = rng.random(t.shape)
        out[in_window] = left[in_window] + u[in_window] * (C - 1.0)

        # Tails: uniform on [-C, l(t)] union [r(t), C], weighted by length.
        tails = ~in_window
        left_len = left[tails] - (-C)
        right_len = C - right[tails]
        total = left_len + right_len
        pick_left = rng.random(tails.sum()) * total < left_len
        v = rng.random(tails.sum())
        tail_out = np.where(
            pick_left,
            -C + v * left_len,
            right[tails] + v * right_len,
        )
        out[tails] = tail_out
        return out

    def _estimate_unit(self, unit_values: np.ndarray, rng: np.random.Generator) -> float:
        t = 2.0 * unit_values - 1.0
        reports = self.perturb(t, rng)
        t_mean = float(reports.mean())
        return (t_mean + 1.0) / 2.0

    def _metadata(self) -> dict:
        meta = super()._metadata()
        meta.update(epsilon=self.epsilon, C=self.C)
        return meta

    # ------------------------------------------------------------------
    def per_report_variance(self, t: float = 0.0) -> float:
        """Worst-useful-case variance of one report (Wang et al. Eq. for Var).

        ``Var[report | t] = t^2/(e^(eps/2)-1) + (e^(eps/2)+3)/(3(e^(eps/2)-1)^2) + small``;
        we return the exact second-moment integral evaluated numerically,
        which the tests cross-check against simulation.
        """
        half = math.exp(self.epsilon / 2.0)
        return (t * t) / (half - 1.0) + (half + 3.0) / (3.0 * (half - 1.0) ** 2)
