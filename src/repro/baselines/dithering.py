"""Subtractive dithering (Ben-Basat et al. 2020) -- the paper's main one-bit rival.

Each client holds ``u in [0, 1]`` and shares a uniform dither ``h ~ U[0,1]``
with the server (shared randomness: in deployment the server seeds the
client's PRG, so ``h`` costs no private communication).  The client sends
the single bit ``b = 1 if u >= h else 0`` and the server forms the unbiased
per-client estimate ``u_hat = b + h - 0.5``.

This was the frontrunner among the one-bit schemes of Ben-Basat et al. in
the paper's setting (Section 2, footnote 3).  For the LDP comparison the
paper applies randomized response to the input-dependent output bit; we do
the same (``epsilon`` parameter), debiasing ``b`` before the dither is
subtracted.

Its weakness -- clearly visible in Figures 1 and 2 -- is that the estimate's
variance is a constant fraction of ``(high - low)**2`` regardless of where
the data actually lives, so loose range bounds are punished hard, with
step-ups at each power of two.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import RangeMeanEstimator
from repro.privacy.randomized_response import RandomizedResponse

__all__ = ["SubtractiveDithering"]


class SubtractiveDithering(RangeMeanEstimator):
    """One-bit mean estimation via subtractive dithering.

    Parameters
    ----------
    low, high:
        Assumed input range; inputs are clipped into it.
    epsilon:
        If given, apply randomized response to the transmitted bit to obtain
        an epsilon-LDP guarantee (the paper's comparison setup).  ``None``
        sends the true bit.

    Examples
    --------
    >>> import numpy as np
    >>> est = SubtractiveDithering(low=0.0, high=1023.0)
    >>> values = np.full(50_000, 400.0)
    >>> abs(est.estimate(values, rng=1).value - 400.0) < 5.0
    True
    """

    method = "dithering"

    def __init__(self, low: float, high: float, epsilon: float | None = None) -> None:
        super().__init__(low, high)
        self.response = RandomizedResponse(epsilon=epsilon) if epsilon is not None else None

    def _estimate_unit(self, unit_values: np.ndarray, rng: np.random.Generator) -> float:
        dither = rng.random(unit_values.shape)
        bits = (unit_values >= dither).astype(np.uint8)
        if self.response is not None:
            reported = self.response.perturb_bits(bits, rng)
            debiased = self.response.unbias_bit_means(reported.astype(np.float64))
        else:
            debiased = bits.astype(np.float64)
        per_client = debiased + dither - 0.5
        return float(per_client.mean())

    def _metadata(self) -> dict:
        meta = super()._metadata()
        meta["epsilon"] = None if self.response is None else self.response.epsilon
        return meta

    @staticmethod
    def per_client_variance_bound() -> float:
        """Non-private per-client estimate variance (unit domain) is <= 1/4.

        ``u_hat - u = b - P(b=1|h) ... `` integrates to Var <= 1/4 over the
        dither; the constant (range-independent in unit terms) is what makes
        the method range-sensitive after rescaling by ``(high - low)**2``.
        """
        return 0.25
