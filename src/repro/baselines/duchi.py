"""Duchi et al. minimax-optimal one-dimensional LDP mechanism.

The early randomized-response-based approach the paper cites (Section 2,
[13]).  For ``t in [-1, 1]`` the client reports one of two values ``+B`` or
``-B`` with ``B = (e^eps + 1)/(e^eps - 1)``, choosing ``+B`` with
probability ``1/2 + t/2 * (e^eps - 1)/(e^eps + 1)``.  Each report is an
unbiased estimate of ``t``; the output is effectively one bit (which of the
two values was sent), making this a fair one-bit comparison point.
"""

from __future__ import annotations

import math

import numpy as np

from repro.baselines.base import RangeMeanEstimator
from repro.exceptions import ConfigurationError

__all__ = ["DuchiMechanism"]


class DuchiMechanism(RangeMeanEstimator):
    """One-bit epsilon-LDP mean estimation (Duchi et al.).

    Examples
    --------
    >>> import numpy as np
    >>> est = DuchiMechanism(low=0.0, high=10.0, epsilon=2.0)
    >>> values = np.full(200_000, 7.0)
    >>> abs(est.estimate(values, rng=2).value - 7.0) < 0.1
    True
    """

    method = "duchi"

    def __init__(self, low: float, high: float, epsilon: float) -> None:
        super().__init__(low, high)
        if not np.isfinite(epsilon) or epsilon <= 0:
            raise ConfigurationError(f"epsilon must be a positive finite float, got {epsilon}")
        self.epsilon = float(epsilon)
        e = math.exp(self.epsilon)
        #: Report magnitude B = (e^eps + 1) / (e^eps - 1).
        self.B = (e + 1.0) / (e - 1.0)
        #: Slope of P(+B) in t: (e^eps - 1) / (2 (e^eps + 1)).
        self._slope = (e - 1.0) / (2.0 * (e + 1.0))

    def perturb(self, t: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        """Privatize inputs ``t in [-1, 1]`` into +/-B reports."""
        t = np.asarray(t, dtype=np.float64)
        prob_plus = 0.5 + self._slope * t
        plus = rng.random(t.shape) < prob_plus
        return np.where(plus, self.B, -self.B)

    def _estimate_unit(self, unit_values: np.ndarray, rng: np.random.Generator) -> float:
        t = 2.0 * unit_values - 1.0
        t_mean = float(self.perturb(t, rng).mean())
        return (t_mean + 1.0) / 2.0

    def _metadata(self) -> dict:
        meta = super()._metadata()
        meta.update(epsilon=self.epsilon, B=self.B)
        return meta

    def per_report_variance(self, t: float = 0.0) -> float:
        """Exact variance of one report: ``B**2 - t**2``."""
        return self.B**2 - t * t
