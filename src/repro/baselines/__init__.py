"""Prior-work baselines the paper compares against (Sections 2 and 4).

All baselines share the :class:`RangeMeanEstimator` interface: configure a
known input range (and epsilon where applicable), then call
``estimate(values, rng)``.
"""

from repro.baselines.base import RangeMeanEstimator, ScalarEstimate
from repro.baselines.dithering import SubtractiveDithering
from repro.baselines.duchi import DuchiMechanism
from repro.baselines.hybrid import HybridMechanism
from repro.baselines.laplace_mean import LaplaceMean
from repro.baselines.piecewise import PiecewiseMechanism
from repro.baselines.randomized_rounding import RandomizedRounding

__all__ = [
    "DuchiMechanism",
    "HybridMechanism",
    "LaplaceMean",
    "PiecewiseMechanism",
    "RandomizedRounding",
    "RangeMeanEstimator",
    "ScalarEstimate",
    "SubtractiveDithering",
]
