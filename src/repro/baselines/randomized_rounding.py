"""Randomized rounding (+ optional randomized response).

The simplest one-bit scheme the paper describes (Section 2, deployed for
Windows telemetry [10]): treat ``u in [0, 1]`` as a probability, round it to
a Bernoulli(u) bit, and optionally pass that bit through randomized response
for an epsilon-LDP guarantee.  The mean of the (debiased) bits estimates the
population mean directly.

Like dithering, accuracy is tied to the assumed range: after rescaling, the
estimate's variance carries a ``(high - low)**2`` factor.  The paper notes
this family exhibited errors 2-3x larger than the plotted methods.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import RangeMeanEstimator
from repro.privacy.randomized_response import RandomizedResponse

__all__ = ["RandomizedRounding"]


class RandomizedRounding(RangeMeanEstimator):
    """One-bit mean estimation via randomized rounding.

    Parameters
    ----------
    low, high:
        Assumed input range.
    epsilon:
        If given, the rounded bit additionally passes through randomized
        response (epsilon-LDP); ``None`` sends the rounded bit as-is.

    Examples
    --------
    >>> import numpy as np
    >>> est = RandomizedRounding(low=0.0, high=100.0)
    >>> values = np.full(100_000, 25.0)
    >>> abs(est.estimate(values, rng=3).value - 25.0) < 1.0
    True
    """

    method = "randomized-rounding"

    def __init__(self, low: float, high: float, epsilon: float | None = None) -> None:
        super().__init__(low, high)
        self.response = RandomizedResponse(epsilon=epsilon) if epsilon is not None else None

    def _estimate_unit(self, unit_values: np.ndarray, rng: np.random.Generator) -> float:
        bits = (rng.random(unit_values.shape) < unit_values).astype(np.uint8)
        if self.response is None:
            return float(bits.mean())
        reported = self.response.perturb_bits(bits, rng)
        return float(self.response.unbias_bit_means(np.array([reported.mean()]))[0])

    def _metadata(self) -> dict:
        meta = super()._metadata()
        meta["epsilon"] = None if self.response is None else self.response.epsilon
        return meta
