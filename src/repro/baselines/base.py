"""Shared machinery for the prior-work baseline estimators.

Every baseline in the paper's evaluation (Section 4) assumes the inputs lie
in a known range ``[low, high]``, maps them to the unit interval via
``u = (x - low) / (high - low)``, runs a one-value-per-client mechanism, and
maps the aggregated estimate back.  :class:`RangeMeanEstimator` centralises
that plumbing, range validation, and clipping, so each concrete baseline only
implements the per-client mechanism.

The paper stresses (Section 2, "The need for adaptive protocols") that the
accuracy of these methods degrades with the *looseness* of ``[low, high]`` --
variance scales with ``(high - low)**2`` -- which is exactly the effect the
bit-depth sweeps (Figures 1c, 2c, 4c) exercise by setting
``high = 2**b - 1``.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.core.client_plane import ClientBatch, elicit_values
from repro.exceptions import ConfigurationError
from repro.rng import ensure_rng

__all__ = ["ScalarEstimate", "RangeMeanEstimator"]


@dataclass(frozen=True)
class ScalarEstimate:
    """A plain scalar estimate with provenance (baseline counterpart of
    :class:`repro.core.results.MeanEstimate`)."""

    value: float
    n_clients: int
    method: str
    metadata: dict[str, Any] = field(default_factory=dict)

    def __float__(self) -> float:  # pragma: no cover - trivial
        return self.value


class RangeMeanEstimator(abc.ABC):
    """Mean estimator over a fixed known range ``[low, high]``.

    Subclasses implement :meth:`_estimate_unit`, which receives the inputs
    scaled (and clipped) into ``[0, 1]`` and must return an unbiased estimate
    of their mean in the unit domain.
    """

    #: Human-readable method tag; subclasses override.
    method = "range-baseline"

    def __init__(self, low: float, high: float) -> None:
        if not (np.isfinite(low) and np.isfinite(high)) or high <= low:
            raise ConfigurationError(f"need finite low < high, got [{low}, {high}]")
        self.low = float(low)
        self.high = float(high)

    # ------------------------------------------------------------------
    @property
    def width(self) -> float:
        return self.high - self.low

    def to_unit(self, values: np.ndarray) -> np.ndarray:
        """Scale values into [0, 1], clipping out-of-range inputs."""
        vals = np.asarray(values, dtype=np.float64)
        return np.clip((vals - self.low) / self.width, 0.0, 1.0)

    def from_unit(self, unit_mean: float) -> float:
        """Map a unit-domain mean back to the caller's domain."""
        return self.low + float(unit_mean) * self.width

    # ------------------------------------------------------------------
    def estimate(
        self,
        values: np.ndarray,
        rng: np.random.Generator | int | None = None,
    ) -> ScalarEstimate:
        """Estimate the mean of ``values`` with this baseline's mechanism."""
        gen = ensure_rng(rng)
        unit = self.to_unit(values)
        if unit.size == 0:
            raise ConfigurationError("cannot estimate a mean from zero clients")
        unit_mean = self._estimate_unit(unit, gen)
        return ScalarEstimate(
            value=self.from_unit(unit_mean),
            n_clients=int(unit.size),
            method=self.method,
            metadata=self._metadata(),
        )

    def estimate_clients(
        self,
        batch: ClientBatch,
        strategy: str = "sample",
        rng: np.random.Generator | int | None = None,
        chunk: int | None = None,
    ) -> ScalarEstimate:
        """Estimate straight from a columnar :class:`ClientBatch`.

        Elicitation (one value per client) runs through the chunk-streamed
        columnar kernels -- stream-identical to the object path for
        ``"sample"`` and exact for ``"max"``/``"latest"`` -- then the
        baseline's *mechanism* runs on the full elicited array, exactly as
        :meth:`estimate` would.  That full-array mechanism stage is every
        baseline's documented object-path fallback: mechanisms like Duchi's
        or Laplace average real-valued reports, where chunked re-association
        cannot be guaranteed bit-identical to the single-pass float
        reduction, so the O(n) elicited array (8 bytes/client) is accepted
        and only elicitation streams.  Inherited by every baseline, so each
        is covered by the columnar/object twin tests.
        """
        gen = ensure_rng(rng)
        values = elicit_values(batch, strategy, gen, chunk=chunk)
        return self.estimate(values, gen)

    # ------------------------------------------------------------------
    @abc.abstractmethod
    def _estimate_unit(self, unit_values: np.ndarray, rng: np.random.Generator) -> float:
        """Return an estimate of ``unit_values.mean()`` from private reports."""

    def _metadata(self) -> dict[str, Any]:
        """Extra provenance recorded on every estimate; subclasses extend."""
        return {"low": self.low, "high": self.high}
