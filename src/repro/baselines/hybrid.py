"""Hybrid mechanism (Wang et al., ICDE 2019) -- piecewise/Duchi mixture.

The same paper that introduces the piecewise mechanism also proposes a
*hybrid*: with probability ``beta = 1 - e^(-eps/2)`` answer via the
piecewise mechanism, otherwise via Duchi's.  The mixture dominates both
components across the epsilon range (piecewise wins at large epsilon,
Duchi at small), so it is the strongest member of that baseline family and
a natural extra comparison point for the Figure 3 sweeps.

Each branch is epsilon-LDP on its own, so the mixture (with a public branch
coin) is epsilon-LDP, and each report remains an unbiased estimate of the
input.
"""

from __future__ import annotations

import math

import numpy as np

from repro.baselines.base import RangeMeanEstimator
from repro.baselines.duchi import DuchiMechanism
from repro.baselines.piecewise import PiecewiseMechanism
from repro.exceptions import ConfigurationError

__all__ = ["HybridMechanism"]


class HybridMechanism(RangeMeanEstimator):
    """Epsilon-LDP mean estimation mixing piecewise and Duchi reports.

    Examples
    --------
    >>> import numpy as np
    >>> est = HybridMechanism(0.0, 100.0, epsilon=1.0)
    >>> values = np.full(200_000, 42.0)
    >>> bool(abs(est.estimate(values, rng=0).value - 42.0) < 2.0)
    True
    """

    method = "hybrid"

    def __init__(self, low: float, high: float, epsilon: float) -> None:
        super().__init__(low, high)
        if not np.isfinite(epsilon) or epsilon <= 0:
            raise ConfigurationError(f"epsilon must be a positive finite float, got {epsilon}")
        self.epsilon = float(epsilon)
        #: Probability of answering via the piecewise branch.
        self.beta = 1.0 - math.exp(-self.epsilon / 2.0)
        self._piecewise = PiecewiseMechanism(low, high, epsilon)
        self._duchi = DuchiMechanism(low, high, epsilon)

    def perturb(self, t: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        """Privatize inputs ``t in [-1, 1]``; each report is unbiased."""
        t = np.asarray(t, dtype=np.float64)
        use_piecewise = rng.random(t.shape) < self.beta
        out = np.empty_like(t)
        if use_piecewise.any():
            out[use_piecewise] = self._piecewise.perturb(t[use_piecewise], rng)
        if (~use_piecewise).any():
            out[~use_piecewise] = self._duchi.perturb(t[~use_piecewise], rng)
        return out

    def _estimate_unit(self, unit_values: np.ndarray, rng: np.random.Generator) -> float:
        t = 2.0 * unit_values - 1.0
        t_mean = float(self.perturb(t, rng).mean())
        return (t_mean + 1.0) / 2.0

    def _metadata(self) -> dict:
        meta = super()._metadata()
        meta.update(epsilon=self.epsilon, beta=self.beta)
        return meta

    def per_report_variance(self, t: float = 0.0) -> float:
        """Mixture variance: ``beta Var_PM + (1-beta) Var_Duchi`` at input t."""
        return (
            self.beta * self._piecewise.per_report_variance(t)
            + (1.0 - self.beta) * self._duchi.per_report_variance(t)
        )
