"""Laplace-noise mean estimation -- the omitted-from-plots baseline.

Each client adds Laplace noise calibrated to the full range (local
sensitivity ``high - low``) and reports the noisy value; the server
averages.  The paper measured this family at errors "considerably higher"
than the plotted methods (Section 4.2) and left it off the charts; we keep
it runnable so that claim is reproducible (see the Figure 3 bench, which
reports it as an extra row).
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import RangeMeanEstimator
from repro.privacy.laplace import LaplaceMechanism

__all__ = ["LaplaceMean"]


class LaplaceMean(RangeMeanEstimator):
    """Epsilon-LDP mean estimation via per-client Laplace noise.

    Examples
    --------
    >>> import numpy as np
    >>> est = LaplaceMean(low=0.0, high=100.0, epsilon=2.0)
    >>> values = np.full(100_000, 60.0)
    >>> abs(est.estimate(values, rng=4).value - 60.0) < 2.0
    True
    """

    method = "laplace"

    def __init__(self, low: float, high: float, epsilon: float) -> None:
        super().__init__(low, high)
        # Unit-domain sensitivity is 1 (values span [0, 1]).
        self.mechanism = LaplaceMechanism(epsilon=epsilon, sensitivity=1.0)

    @property
    def epsilon(self) -> float:
        return self.mechanism.epsilon

    def _estimate_unit(self, unit_values: np.ndarray, rng: np.random.Generator) -> float:
        noisy = self.mechanism.privatize(unit_values, rng)
        return float(noisy.mean())

    def _metadata(self) -> dict:
        meta = super()._metadata()
        meta["epsilon"] = self.mechanism.epsilon
        return meta
