"""Trial-execution engine: serial and multi-process backends for the harness.

Every accuracy figure in the paper is ~100 repetitions x many sweep points x
many methods.  The repetitions of one experimental *cell* are statistically
independent by construction -- each gets its own spawned child of the cell's
:class:`~numpy.random.SeedSequence` -- which makes them embarrassingly
parallel *without* sacrificing reproducibility.  This module owns that
machinery:

* :class:`SerialExecutor` -- runs repetitions in-process, in order.  This is
  the default and is bit-identical to the historical single-loop behaviour.
* :class:`ParallelExecutor` -- distributes contiguous chunks of repetitions
  over a ``fork``-based :class:`~concurrent.futures.ProcessPoolExecutor`.

**Determinism contract.**  Repetition ``i`` of a cell is computed from the
``i``-th spawned child of the cell seed and nothing else: no repetition ever
reads another repetition's stream, and chunk boundaries carry no randomness.
Estimates and truths are therefore *bit-identical* across executors and
worker counts (asserted by ``tests/test_execution.py``).

**Batch dispatch.**  If a cell's ``run_estimator`` callable exposes an
``estimate_batch(values_2d, rngs) -> estimates`` attribute (see
:meth:`repro.core.basic.BasicBitPushing.estimate_batch`), the chunk runner
stacks same-shape populations into ``(r, n)`` arrays and calls the kernel
once per slice, again bit-identical to the per-repetition loop.  Slices are
bounded by the same ``REPRO_BATCH_CHUNK`` element budget the columnar client
plane streams with (:func:`repro.core.client_plane.batch_chunk_size`): a
population larger than the budget flushes alone and runs the scalar
estimator, whose own collection stage chunk-streams internally -- so there
is no population-size cap on dispatch, just one memory knob.

Closures (figure cell factories) are not picklable, so the parallel backend
relies on ``fork`` semantics: the cell task is parked in a module global
immediately before the pool forks, and workers inherit it by memory copy.
On platforms without ``fork`` the parallel executor degrades to serial
execution with a warning.  Worker processes run with tracing disabled (a
forked JSONL exporter would interleave writes on a shared descriptor), but
record metrics into a worker-private registry whose closing snapshot rides
back with the chunk results and is folded into the parent registry
(:meth:`MetricsRegistry.merge_snapshot`) -- so counters and histograms
incremented inside trial code match serial execution exactly.  The parent
additionally records one span per chunk plus the engine metrics
(``trials_executed_total``, ``executor_workers``,
``trial_cell_duration_s``) documented in ``docs/performance.md``.
"""

from __future__ import annotations

import multiprocessing
import os
import time
import warnings
from concurrent.futures import ProcessPoolExecutor
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Callable, Iterator, Sequence

import numpy as np

from repro.core.client_plane import batch_chunk_size
from repro.exceptions import ConfigurationError
from repro.observability import get_metrics, get_tracer

__all__ = [
    "CellTask",
    "TrialExecutor",
    "SerialExecutor",
    "ParallelExecutor",
    "executor_for",
    "resolve_workers",
    "get_executor",
    "configure_executor",
    "use_executor",
    "run_rep_chunk",
    "spawn_seed_sequences",
]

_FORK_AVAILABLE = "fork" in multiprocessing.get_all_start_methods()

# The ceiling on elements per stacked batch-kernel call (reps x population)
# is the shared REPRO_BATCH_CHUNK budget (batch_chunk_size()): a stacked
# (R, n) working set that outgrows the cache loses more to memory traffic
# than the batching saves, and slicing repetitions cannot change results
# (they are independent).  A single population at or above the budget
# flushes alone through the scalar estimator, whose collection stage
# chunk-streams with the same knob -- dispatch is a pure performance
# decision, both paths are bit-identical.


@dataclass(frozen=True)
class CellTask:
    """The three callables defining one experimental cell.

    ``make_data(rng) -> values``, ``run_estimator(values, rng) -> float``,
    ``truth_fn(values) -> float`` -- exactly the contract of
    :func:`repro.metrics.experiment.run_trials`.
    """

    make_data: Callable[[np.random.Generator], np.ndarray]
    run_estimator: Callable[[np.ndarray, np.random.Generator], float]
    truth_fn: Callable[[np.ndarray], float]


def spawn_seed_sequences(
    parent: np.random.Generator, n_children: int
) -> tuple[list[np.random.SeedSequence], type]:
    """Spawn ``n_children`` child seed sequences off a generator's own sequence.

    The children are the same ones ``parent.spawn(n_children)`` would have
    produced (and the parent's spawn counter advances identically), so a unit
    of work keyed to child ``i`` sees the same stream no matter which worker
    runs it, in what order, or whether the orchestrator is serial.  This is
    the determinism primitive shared by the trial executors and the sharded
    secure-aggregation plane.  Returns the children plus the parent's bit
    generator class (workers rebuild generators with it).
    """
    seed_seq = parent.bit_generator.seed_seq
    if not isinstance(seed_seq, np.random.SeedSequence):
        raise ConfigurationError(
            "deterministic fan-out needs a generator with a SeedSequence-backed "
            f"bit generator; got {type(seed_seq)!r}"
        )
    return seed_seq.spawn(n_children), type(parent.bit_generator)


def _rep_seed_sequences(
    parent: np.random.Generator, n_reps: int
) -> tuple[list[np.random.SeedSequence], type]:
    """Spawn one child :class:`~numpy.random.SeedSequence` per repetition."""
    return spawn_seed_sequences(parent, n_reps)


def run_rep_chunk(
    task: CellTask,
    rep_seeds: Sequence[np.random.SeedSequence],
    bit_generator_cls: type,
) -> tuple[np.ndarray, np.ndarray]:
    """Run one contiguous chunk of repetitions; returns (estimates, truths).

    This is the single place repetition semantics live: both executors (and
    every worker process) call it, so serial, parallel, looped, and batched
    paths cannot drift apart.
    """
    n = len(rep_seeds)
    estimates = np.empty(n)
    truths = np.empty(n)
    batch = getattr(task.run_estimator, "estimate_batch", None)

    if batch is None:
        for i, seed in enumerate(rep_seeds):
            gen = np.random.Generator(bit_generator_cls(seed))
            data_rng, est_rng = gen.spawn(2)
            values = task.make_data(data_rng)
            truths[i] = task.truth_fn(values)
            estimates[i] = float(task.run_estimator(values, est_rng))
        return estimates, truths

    # Batch path: accumulate same-shape populations into cache-sized slices
    # and hand each slice to the vectorized kernel as one stacked (r, n)
    # array.  Every repetition still consumes only its own spawned streams
    # (population draw, then estimator), so slice boundaries -- like chunk
    # boundaries -- carry no randomness and cannot change results.  A
    # population that cannot join a slice (ragged shape, non-1-D, or alone
    # when its slice flushes) runs through the scalar estimator instead,
    # which is bit-identical by the kernel's contract.
    pending: list[np.ndarray] = []
    pending_rngs: list[np.random.Generator] = []
    pending_start = 0
    slice_elements = batch_chunk_size()

    def flush() -> None:
        if not pending:
            return
        lo = pending_start
        if len(pending) == 1:
            estimates[lo] = float(task.run_estimator(pending[0], pending_rngs[0]))
        else:
            estimates[lo : lo + len(pending)] = np.asarray(
                batch(np.stack(pending), pending_rngs), dtype=np.float64
            )
        pending.clear()
        pending_rngs.clear()

    for i, seed in enumerate(rep_seeds):
        gen = np.random.Generator(bit_generator_cls(seed))
        data_rng, est_rng = gen.spawn(2)
        values = np.asarray(task.make_data(data_rng))
        truths[i] = task.truth_fn(values)
        batchable = values.ndim == 1 and values.size > 0
        if pending and (not batchable or values.shape != pending[0].shape):
            flush()
        if not batchable:
            estimates[i] = float(task.run_estimator(values, est_rng))
            continue
        if not pending:
            pending_start = i
        pending.append(values)
        pending_rngs.append(est_rng)
        if len(pending) * values.size >= slice_elements:
            flush()
    flush()
    return estimates, truths


def _record_cell_metrics(n_reps: int, workers: int, elapsed_s: float) -> None:
    metrics = get_metrics()
    if not metrics.enabled:
        return
    metrics.counter("trials_executed_total").inc(n_reps)
    metrics.gauge("executor_workers").set(workers)
    metrics.histogram("trial_cell_duration_s").observe(elapsed_s)


class TrialExecutor:
    """Strategy interface: run the repetitions of one experimental cell."""

    #: Worker processes this executor distributes over (1 = in-process).
    workers: int = 1

    def run_cell(
        self,
        task: CellTask,
        n_reps: int,
        parent: np.random.Generator,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Execute ``n_reps`` repetitions of ``task``; returns (estimates, truths)."""
        raise NotImplementedError


class SerialExecutor(TrialExecutor):
    """In-process execution, one chunk, historical rep order (the default)."""

    workers = 1

    def run_cell(
        self,
        task: CellTask,
        n_reps: int,
        parent: np.random.Generator,
    ) -> tuple[np.ndarray, np.ndarray]:
        rep_seeds, bitgen_cls = _rep_seed_sequences(parent, n_reps)
        start = time.perf_counter()
        with get_tracer().span(
            "executor.chunk", {"backend": "serial", "chunk": 0, "reps": n_reps}
        ):
            estimates, truths = run_rep_chunk(task, rep_seeds, bitgen_cls)
        _record_cell_metrics(n_reps, self.workers, time.perf_counter() - start)
        return estimates, truths


# Payload handed to forked workers by memory inheritance (closures cannot be
# pickled).  Written immediately before the pool forks, cleared after; the
# engine is orchestrated from a single thread, like the rest of the harness.
_FORK_PAYLOAD: tuple[CellTask, type] | None = None


def _forked_chunk(
    chunk_index: int, rep_seeds: Sequence[np.random.SeedSequence]
) -> tuple[int, np.ndarray, np.ndarray, float, float, dict | None]:
    """Worker entry point: run one chunk from the fork-inherited payload.

    Returns the chunk's wall and CPU cost alongside its results: workers run
    with tracing disabled, so the parent folds their cost into its own
    profiler (:meth:`PhaseProfiler.merge_external`) after the fact.  If the
    parent had metrics enabled at fork time, the worker records into a fresh
    private registry and ships the closing snapshot back, so counters and
    histograms incremented inside trial code survive the fork (the parent
    folds them via :meth:`MetricsRegistry.merge_snapshot`).
    """
    from repro import observability
    from repro.observability import MetricsRegistry

    # A forked worker inherits the parent's exporters (shared file
    # descriptors); drop to no-op instrumentation so traces stay coherent,
    # then re-enable metrics alone into a worker-private registry.
    parent_metrics_enabled = observability.get_metrics().enabled
    observability.disable()
    worker_metrics: MetricsRegistry | None = None
    if parent_metrics_enabled:
        worker_metrics = MetricsRegistry()
        observability.configure(metrics=worker_metrics)
    assert _FORK_PAYLOAD is not None, "worker forked without a cell payload"
    task, bitgen_cls = _FORK_PAYLOAD
    start = time.perf_counter()
    cpu_start = time.process_time()
    estimates, truths = run_rep_chunk(task, rep_seeds, bitgen_cls)
    return (
        chunk_index,
        estimates,
        truths,
        time.perf_counter() - start,
        time.process_time() - cpu_start,
        worker_metrics.snapshot() if worker_metrics is not None else None,
    )


class ParallelExecutor(TrialExecutor):
    """Distribute repetition chunks over forked worker processes.

    Repetitions are split into ``min(workers, n_reps)`` contiguous chunks
    (one per worker) and stitched back by position, so results are
    bit-identical to :class:`SerialExecutor` for any worker count.
    """

    def __init__(self, workers: int) -> None:
        if workers < 2:
            raise ConfigurationError(
                f"ParallelExecutor needs >= 2 workers, got {workers}; "
                "use SerialExecutor for single-process execution"
            )
        self.workers = int(workers)
        if not _FORK_AVAILABLE:  # pragma: no cover - platform dependent
            warnings.warn(
                "fork start method unavailable; ParallelExecutor will run "
                "serially (cell tasks are closures and cannot be pickled)",
                RuntimeWarning,
                stacklevel=2,
            )

    def run_cell(
        self,
        task: CellTask,
        n_reps: int,
        parent: np.random.Generator,
    ) -> tuple[np.ndarray, np.ndarray]:
        global _FORK_PAYLOAD
        rep_seeds, bitgen_cls = _rep_seed_sequences(parent, n_reps)
        n_chunks = min(self.workers, n_reps)
        if not _FORK_AVAILABLE or n_chunks < 2:  # pragma: no cover - trivial
            start = time.perf_counter()
            with get_tracer().span(
                "executor.chunk", {"backend": "serial-fallback", "chunk": 0, "reps": n_reps}
            ):
                estimates, truths = run_rep_chunk(task, rep_seeds, bitgen_cls)
            _record_cell_metrics(n_reps, 1, time.perf_counter() - start)
            return estimates, truths

        bounds = np.linspace(0, n_reps, n_chunks + 1).astype(int)
        chunks = [rep_seeds[lo:hi] for lo, hi in zip(bounds[:-1], bounds[1:])]
        estimates = np.empty(n_reps)
        truths = np.empty(n_reps)
        tracer = get_tracer()
        start = time.perf_counter()
        _FORK_PAYLOAD = (task, bitgen_cls)
        try:
            context = multiprocessing.get_context("fork")
            with ProcessPoolExecutor(max_workers=n_chunks, mp_context=context) as pool:
                futures = [
                    pool.submit(_forked_chunk, index, chunk)
                    for index, chunk in enumerate(chunks)
                ]
                profiler = getattr(tracer, "profiler", None)
                metrics = get_metrics()
                # Futures resolve in submit (= chunk) order, so worker
                # snapshots merge deterministically regardless of which
                # worker finished first.
                for future in futures:
                    with tracer.span("executor.chunk", {"backend": "process-pool"}) as span:
                        (
                            index,
                            chunk_estimates,
                            chunk_truths,
                            duration,
                            cpu,
                            worker_snapshot,
                        ) = future.result()
                        lo, hi = bounds[index], bounds[index + 1]
                        estimates[lo:hi] = chunk_estimates
                        truths[lo:hi] = chunk_truths
                        span.set_attribute("chunk", index)
                        span.set_attribute("reps", int(hi - lo))
                        span.set_attribute("worker_duration_s", duration)
                        span.set_attribute("worker_cpu_s", cpu)
                        if profiler is not None:
                            profiler.merge_external("executor.worker", duration, cpu)
                        if worker_snapshot is not None and metrics.enabled:
                            metrics.merge_snapshot(worker_snapshot)
        finally:
            _FORK_PAYLOAD = None
        _record_cell_metrics(n_reps, n_chunks, time.perf_counter() - start)
        return estimates, truths


# ----------------------------------------------------------------------
# Default-executor plumbing (``--workers`` flags / REPRO_WORKERS env var)
# ----------------------------------------------------------------------

def resolve_workers(workers: int | None = None) -> int:
    """Resolve an explicit worker count, falling back to ``REPRO_WORKERS``.

    ``None`` reads the environment (absent/empty means 1); anything below 1,
    or a non-integer environment value, raises :class:`ConfigurationError`.
    """
    if workers is None:
        raw = os.environ.get("REPRO_WORKERS", "").strip()
        if not raw:
            return 1
        try:
            workers = int(raw)
        except ValueError:
            raise ConfigurationError(
                f"REPRO_WORKERS must be an integer, got {raw!r}"
            ) from None
    workers = int(workers)
    if workers < 1:
        raise ConfigurationError(f"worker count must be >= 1, got {workers}")
    return workers


def executor_for(workers: int | None = None) -> TrialExecutor:
    """Build the executor for a worker count (``None`` = ``REPRO_WORKERS``)."""
    count = resolve_workers(workers)
    return SerialExecutor() if count == 1 else ParallelExecutor(count)


# The process-wide default, used whenever run_trials/sweep are not handed an
# executor explicitly.  Lazily built from REPRO_WORKERS on first use, like
# the observability globals (and for the same hot-path reason).
_default_executor: TrialExecutor | None = None


def get_executor() -> TrialExecutor:
    """The process-wide default executor (built from ``REPRO_WORKERS`` once)."""
    global _default_executor
    if _default_executor is None:
        _default_executor = executor_for(None)
    return _default_executor


def configure_executor(executor: TrialExecutor | None) -> None:
    """Install a process-wide default executor.

    ``None`` resets to the lazy default, re-reading ``REPRO_WORKERS`` on the
    next :func:`get_executor` call (useful in tests).
    """
    global _default_executor
    _default_executor = executor


@contextmanager
def use_executor(executor: TrialExecutor) -> Iterator[TrialExecutor]:
    """Temporarily install a default executor, restoring the previous one."""
    global _default_executor
    previous = _default_executor
    _default_executor = executor
    try:
        yield executor
    finally:
        _default_executor = previous
