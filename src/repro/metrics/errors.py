"""Error metrics used throughout the evaluation.

The paper's headline metric (Section 4) is the normalized root-mean-squared
error: squared differences between estimate and the true (empirical) mean,
averaged over 100 independent repetitions, rooted, and divided by the true
mean.  We implement that exactly, plus plain RMSE (Figure 3 reports
unnormalized RMSE), bias, and the standard errors used for error bars.
"""

from __future__ import annotations

import numpy as np

__all__ = ["rmse", "nrmse", "bias", "standard_error", "nrmse_standard_error"]


def _paired(estimates: np.ndarray, truths: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    est = np.asarray(estimates, dtype=np.float64)
    tru = np.asarray(truths, dtype=np.float64)
    if tru.size == 1:
        tru = np.full_like(est, tru.item())
    if est.shape != tru.shape or est.size == 0:
        raise ValueError(f"need matching non-empty arrays, got {est.shape} vs {tru.shape}")
    return est, tru


def rmse(estimates: np.ndarray, truths: np.ndarray) -> float:
    """Root-mean-squared error over repetitions.

    ``truths`` may be a scalar (shared ground truth) or one truth per
    repetition (the paper's per-sample empirical mean).
    """
    est, tru = _paired(estimates, truths)
    return float(np.sqrt(np.mean((est - tru) ** 2)))


def nrmse(estimates: np.ndarray, truths: np.ndarray) -> float:
    """RMSE divided by the (mean of the) true value -- the paper's NRMSE."""
    est, tru = _paired(estimates, truths)
    denom = float(np.mean(tru))
    if denom == 0.0:
        raise ValueError("NRMSE undefined for a zero true mean")
    return rmse(est, tru) / abs(denom)


def bias(estimates: np.ndarray, truths: np.ndarray) -> float:
    """Mean signed error -- near zero for the unbiased protocols."""
    est, tru = _paired(estimates, truths)
    return float(np.mean(est - tru))


def standard_error(samples: np.ndarray) -> float:
    """Standard error of the mean of ``samples``."""
    samples = np.asarray(samples, dtype=np.float64)
    if samples.size < 2:
        return float("nan")
    return float(samples.std(ddof=1) / np.sqrt(samples.size))


def nrmse_standard_error(estimates: np.ndarray, truths: np.ndarray) -> float:
    """Delta-method standard error of the NRMSE point estimate.

    With ``s = mean(e^2)`` over per-repetition squared relative errors
    ``e``, NRMSE = sqrt(s), so ``se(NRMSE) ~= se(s) / (2 sqrt(s))``.  Used
    for the error bars on every figure (paper: "Error bars on our plots
    indicate the standard error").
    """
    est, tru = _paired(estimates, truths)
    rel_sq = ((est - tru) / np.mean(tru)) ** 2
    point = float(np.sqrt(np.mean(rel_sq)))
    if point == 0.0 or rel_sq.size < 2:
        return 0.0
    return standard_error(rel_sq) / (2.0 * point)
