"""Repetition and sweep harness for the accuracy experiments.

One experimental *cell* in the paper is: draw a fresh population, run one
estimator on it, compare to that population's empirical statistic; repeat
100 times; report NRMSE (or RMSE) with a standard-error bar.  A *figure
series* sweeps one parameter (mean, n, bit depth, epsilon, ...) across
cells for one method.

:func:`run_trials` implements the cell, :func:`sweep` the series.  Both are
fully deterministic given a seed: repetitions use spawned child generators,
so adding methods or sweep points never perturbs other cells' randomness.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

import numpy as np

from repro.metrics.errors import bias, nrmse, nrmse_standard_error, rmse, standard_error
from repro.metrics.execution import CellTask, TrialExecutor, get_executor
from repro.rng import ensure_rng

__all__ = ["TrialStats", "SeriesResult", "run_trials", "sweep"]

#: Makes one fresh population: (rng) -> values array.
MakeData = Callable[[np.random.Generator], np.ndarray]
#: Runs one estimator: (values, rng) -> scalar estimate.
RunEstimator = Callable[[np.ndarray, np.random.Generator], float]
#: Ground truth for one population: (values) -> scalar.
TruthFn = Callable[[np.ndarray], float]


@dataclass(frozen=True)
class TrialStats:
    """Aggregated accuracy of one (method, parameter) cell."""

    estimates: np.ndarray
    truths: np.ndarray
    n_reps: int

    @property
    def rmse(self) -> float:
        return rmse(self.estimates, self.truths)

    @property
    def nrmse(self) -> float:
        return nrmse(self.estimates, self.truths)

    @property
    def nrmse_stderr(self) -> float:
        return nrmse_standard_error(self.estimates, self.truths)

    @property
    def bias(self) -> float:
        return bias(self.estimates, self.truths)

    @property
    def estimate_stderr(self) -> float:
        return standard_error(self.estimates)

    @property
    def mean_truth(self) -> float:
        return float(np.mean(self.truths))


@dataclass
class SeriesResult:
    """One labelled line of a figure: x-values plus per-cell statistics."""

    label: str
    x: list[float] = field(default_factory=list)
    stats: list[TrialStats] = field(default_factory=list)

    def append(self, x_value: float, cell: TrialStats) -> None:
        self.x.append(float(x_value))
        self.stats.append(cell)

    @property
    def nrmse(self) -> list[float]:
        return [cell.nrmse for cell in self.stats]

    @property
    def rmse(self) -> list[float]:
        return [cell.rmse for cell in self.stats]

    @property
    def nrmse_stderr(self) -> list[float]:
        return [cell.nrmse_stderr for cell in self.stats]

    def rows(self, metric: str = "nrmse") -> list[tuple[float, float, float]]:
        """(x, value, stderr) triples, ready for printing or plotting."""
        if metric == "nrmse":
            return list(zip(self.x, self.nrmse, self.nrmse_stderr))
        if metric == "rmse":
            return list(zip(self.x, self.rmse, [cell.estimate_stderr for cell in self.stats]))
        raise ValueError(f"unknown metric {metric!r}")


def run_trials(
    make_data: MakeData,
    run_estimator: RunEstimator,
    n_reps: int = 100,
    seed: int | np.random.Generator | None = 0,
    truth_fn: TruthFn | None = None,
    executor: TrialExecutor | None = None,
) -> TrialStats:
    """Run ``n_reps`` independent repetitions of one experimental cell.

    Each repetition gets two independent child generators -- one for the
    population draw, one for the estimator -- so methods sharing a seed see
    identical populations (paired comparison, as in the paper's plots).

    Execution is delegated to a :class:`~repro.metrics.execution.TrialExecutor`
    (the process default from :func:`~repro.metrics.execution.get_executor`
    when ``executor`` is None).  Every executor honours the same spawned-seed
    discipline, so results are bit-identical across backends and worker
    counts; estimators exposing an ``estimate_batch`` attribute are
    dispatched to their vectorized batch path when population shapes allow.
    """
    if n_reps < 1:
        raise ValueError(f"n_reps must be >= 1, got {n_reps}")
    parent = ensure_rng(seed)
    truth = truth_fn if truth_fn is not None else lambda values: float(np.mean(values))
    task = CellTask(make_data=make_data, run_estimator=run_estimator, truth_fn=truth)
    runner = executor if executor is not None else get_executor()
    estimates, truths = runner.run_cell(task, n_reps, parent)
    return TrialStats(estimates=estimates, truths=truths, n_reps=n_reps)


def sweep(
    label: str,
    x_values: Sequence[float],
    cell_factory: Callable[[Any], tuple[MakeData, RunEstimator]],
    n_reps: int = 100,
    seed: int = 0,
    truth_fn: TruthFn | None = None,
    executor: TrialExecutor | None = None,
) -> SeriesResult:
    """Sweep one parameter for one method, producing a figure series.

    ``cell_factory(x)`` returns the ``(make_data, run_estimator)`` pair for
    parameter value ``x``.  Each sweep point derives its seed from ``seed``
    and its position, so series are reproducible point-by-point (and across
    executors -- see :mod:`repro.metrics.execution`).
    """
    series = SeriesResult(label=label)
    children = np.random.SeedSequence(seed).spawn(len(x_values))
    for x_value, child in zip(x_values, children):
        make_data, run_estimator = cell_factory(x_value)
        cell = run_trials(
            make_data,
            run_estimator,
            n_reps=n_reps,
            seed=np.random.default_rng(child),
            truth_fn=truth_fn,
            executor=executor,
        )
        series.append(x_value, cell)
    return series
