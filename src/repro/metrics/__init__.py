"""Accuracy metrics and the repetition/sweep experiment harness."""

from repro.metrics.errors import (
    bias,
    nrmse,
    nrmse_standard_error,
    rmse,
    standard_error,
)
from repro.metrics.experiment import SeriesResult, TrialStats, run_trials, sweep

__all__ = [
    "SeriesResult",
    "TrialStats",
    "bias",
    "nrmse",
    "nrmse_standard_error",
    "rmse",
    "run_trials",
    "standard_error",
    "sweep",
]
