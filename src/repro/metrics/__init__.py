"""Accuracy metrics and the repetition/sweep experiment harness."""

from repro.metrics.errors import (
    bias,
    nrmse,
    nrmse_standard_error,
    rmse,
    standard_error,
)
from repro.metrics.execution import (
    ParallelExecutor,
    SerialExecutor,
    TrialExecutor,
    configure_executor,
    executor_for,
    get_executor,
    resolve_workers,
    use_executor,
)
from repro.metrics.experiment import SeriesResult, TrialStats, run_trials, sweep

__all__ = [
    "ParallelExecutor",
    "SerialExecutor",
    "SeriesResult",
    "TrialExecutor",
    "TrialStats",
    "bias",
    "configure_executor",
    "executor_for",
    "get_executor",
    "nrmse",
    "nrmse_standard_error",
    "resolve_workers",
    "rmse",
    "run_trials",
    "standard_error",
    "sweep",
    "use_executor",
]
