"""Correctness tooling: runtime invariants, statistical oracles, selfcheck.

The estimators in this repository come with closed-form guarantees
(unbiasedness, the Lemma 3.1/3.3 variance bounds, exact secure-aggregation
sums, conservation of the privacy ledger).  This package *verifies* those
guarantees as the codebase evolves, in three layers:

* :mod:`repro.verification.invariants` -- cheap, always-on runtime checks
  that raise :class:`~repro.exceptions.InvariantViolation` on structural
  breakage (a schedule that stopped summing to 1, an apportionment that
  leaks clients, a secure sum that disagrees with its plaintext twin, a
  ledger whose cached totals drift from its entries, a meter over its cap).
* :mod:`repro.verification.statcheck` + :mod:`repro.verification.oracles`
  -- seeded Monte-Carlo *differential oracles* that run each estimator
  against its closed-form expectation and against its own plaintext/serial
  twin, with z- and chi-square assertions under family-wise error control
  so a fixed-seed CI run can never flake.
* ``scripts/lint_rng.py`` -- a static AST pass enforcing the repo's seed
  discipline (no module-level ``np.random`` calls, no stdlib ``random``,
  no unseeded ``default_rng()`` inside ``src/repro``), which the parallel
  executor's bit-identity contract depends on.

``python -m repro.cli selfcheck [--deep]`` (see
:mod:`repro.verification.selfcheck`) runs layers 1 and 2 with spans and
metrics and exits non-zero on any failure.
"""

from repro.verification.invariants import (
    check_apportionment,
    check_bit_meter,
    check_estimate,
    check_ledger_conservation,
    check_schedule_normalized,
    check_secure_sum,
)
from repro.verification.oracles import (
    OracleResult,
    adaptive_unbiasedness_oracle,
    baseline_unbiasedness_oracle,
    basic_unbiasedness_oracle,
    basic_variance_bound_oracle,
    executor_twin_oracle,
    rr_debias_oracle,
    secure_agg_oracle,
    serial_twin_oracle,
    variance_estimator_oracle,
)
from repro.verification.selfcheck import CheckOutcome, SelfCheckReport, run_selfcheck
from repro.verification.statcheck import (
    FamilyWiseGate,
    TestResult,
    chi2_sf,
    chi_square_gof,
    normal_sf,
    variance_upper_tail,
    z_test,
)

__all__ = [
    "CheckOutcome",
    "FamilyWiseGate",
    "OracleResult",
    "SelfCheckReport",
    "TestResult",
    "adaptive_unbiasedness_oracle",
    "baseline_unbiasedness_oracle",
    "basic_unbiasedness_oracle",
    "basic_variance_bound_oracle",
    "check_apportionment",
    "check_bit_meter",
    "check_estimate",
    "check_ledger_conservation",
    "check_schedule_normalized",
    "check_secure_sum",
    "chi2_sf",
    "chi_square_gof",
    "executor_twin_oracle",
    "normal_sf",
    "rr_debias_oracle",
    "run_selfcheck",
    "secure_agg_oracle",
    "serial_twin_oracle",
    "variance_estimator_oracle",
    "variance_upper_tail",
    "z_test",
]
