"""Statistical assertion primitives for the Monte-Carlo oracles.

Self-contained implementations (numpy + math only; no scipy at runtime) of
the two tail functions the oracles need -- the standard normal survival
function and the chi-square survival function via the regularized upper
incomplete gamma -- plus the test helpers built on them and a Bonferroni
family-wise gate.

**Why family-wise control matters here.**  One ``selfcheck`` run executes
dozens of statistical tests.  With per-test significance ``alpha`` the
probability that a *correct* estimator trips at least one test grows with
the test count; gating the whole family at ``alpha_family`` (each test
compared against ``alpha_family / n_tests``) keeps the false-alarm
probability of the entire suite below ``alpha_family``.  The suite runs on
fixed seeds -- so a given release either passes forever or fails forever --
but the Bonferroni budget is what makes *re-seeding* safe: any fresh seed
has probability < ``alpha_family`` (default 1e-6) of a spurious failure,
while gross implementation bugs (a wrong debias constant, a dropped
``2**j`` weight) produce z-statistics in the hundreds and fail at any
plausible threshold.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

__all__ = [
    "TestResult",
    "FamilyWiseGate",
    "normal_sf",
    "chi2_sf",
    "z_test",
    "variance_upper_tail",
    "chi_square_gof",
]


@dataclass(frozen=True)
class TestResult:
    """One statistical test: the statistic, its p-value, and provenance."""

    name: str
    statistic: float
    p_value: float
    detail: str = ""


# ----------------------------------------------------------------------
# Tail functions
# ----------------------------------------------------------------------

def normal_sf(z: float) -> float:
    """Survival function ``P(Z > z)`` of the standard normal."""
    return 0.5 * math.erfc(z / math.sqrt(2.0))


def _regularized_upper_gamma(a: float, x: float) -> float:
    """``Q(a, x) = Gamma(a, x) / Gamma(a)`` via series / continued fraction.

    The classic two-regime evaluation: a power series for ``P(a, x)`` when
    ``x < a + 1`` and a Lentz continued fraction for ``Q(a, x)`` otherwise.
    Accurate to ~1e-14 over the range the oracles use.
    """
    if a <= 0.0:
        raise ValueError(f"gamma shape must be positive, got {a}")
    if x < 0.0:
        raise ValueError(f"gamma argument must be >= 0, got {x}")
    if x == 0.0:
        return 1.0
    log_prefactor = -x + a * math.log(x) - math.lgamma(a)
    if x < a + 1.0:
        # Series for the lower function P; return its complement.
        term = 1.0 / a
        total = term
        denom = a
        for _ in range(1000):
            denom += 1.0
            term *= x / denom
            total += term
            if abs(term) < abs(total) * 1e-16:
                break
        return max(0.0, 1.0 - total * math.exp(log_prefactor))
    # Modified Lentz continued fraction for Q directly.
    tiny = 1e-300
    b = x + 1.0 - a
    c = 1.0 / tiny
    d = 1.0 / b
    h = d
    for i in range(1, 1000):
        an = -i * (i - a)
        b += 2.0
        d = an * d + b
        if abs(d) < tiny:
            d = tiny
        c = b + an / c
        if abs(c) < tiny:
            c = tiny
        d = 1.0 / d
        delta = d * c
        h *= delta
        if abs(delta - 1.0) < 1e-16:
            break
    return min(1.0, math.exp(log_prefactor) * h)


def chi2_sf(x: float, df: float) -> float:
    """Survival function ``P(X > x)`` of the chi-square with ``df`` dof."""
    if df <= 0:
        raise ValueError(f"degrees of freedom must be positive, got {df}")
    if x <= 0.0:
        return 1.0
    return _regularized_upper_gamma(df / 2.0, x / 2.0)


# ----------------------------------------------------------------------
# Tests
# ----------------------------------------------------------------------

def z_test(
    sample_mean: float,
    expected_mean: float,
    std_of_mean: float,
    name: str = "z",
) -> TestResult:
    """Two-sided z-test of ``sample_mean`` against ``expected_mean``.

    ``std_of_mean`` is the standard deviation *of the sample mean* (i.e.
    already divided by ``sqrt(n)``); a zero value degenerates to an exact
    equality check.
    """
    if std_of_mean < 0 or not math.isfinite(std_of_mean):
        raise ValueError(f"std_of_mean must be finite and >= 0, got {std_of_mean}")
    diff = sample_mean - expected_mean
    if std_of_mean == 0.0:
        z = 0.0 if diff == 0.0 else math.inf
    else:
        z = diff / std_of_mean
    p = 2.0 * normal_sf(abs(z))
    return TestResult(
        name=name,
        statistic=float(z),
        p_value=float(p),
        detail=f"mean {sample_mean:.6g} vs expected {expected_mean:.6g} (z={z:.3f})",
    )


def variance_upper_tail(
    sample_variance: float,
    variance_bound: float,
    n_samples: int,
    name: str = "variance-bound",
) -> TestResult:
    """One-sided test that a sample variance does not *exceed* a bound.

    Under Gaussian-ish sampling, ``(n-1) s^2 / sigma^2 ~ chi^2(n-1)``; a
    small upper-tail p-value means the empirical variance is significantly
    above the closed-form bound (Lemma 3.1 / 3.3).  One-sided because the
    quasi-Monte-Carlo central assignment is *allowed* to beat the bound
    (finite-population correction), just never to break it.
    """
    if n_samples < 2:
        raise ValueError(f"need >= 2 samples for a variance test, got {n_samples}")
    if variance_bound <= 0:
        raise ValueError(f"variance bound must be positive, got {variance_bound}")
    statistic = (n_samples - 1) * sample_variance / variance_bound
    p = chi2_sf(statistic, n_samples - 1)
    return TestResult(
        name=name,
        statistic=float(statistic),
        p_value=float(p),
        detail=(
            f"sample var {sample_variance:.6g} vs bound {variance_bound:.6g} "
            f"over {n_samples} reps"
        ),
    )


def chi_square_gof(
    observed: np.ndarray,
    expected: np.ndarray,
    ddof: int = 0,
    name: str = "chi-square-gof",
) -> TestResult:
    """Pearson chi-square goodness-of-fit over count bins.

    Bins with zero expectation must also be observed zero (and contribute no
    degrees of freedom); otherwise the fit fails outright.
    """
    obs = np.asarray(observed, dtype=np.float64)
    exp = np.asarray(expected, dtype=np.float64)
    if obs.shape != exp.shape:
        raise ValueError(f"observed shape {obs.shape} != expected shape {exp.shape}")
    empty = exp <= 0.0
    if np.any(obs[empty] != 0.0):
        return TestResult(
            name=name,
            statistic=math.inf,
            p_value=0.0,
            detail="observed mass in a zero-expectation bin",
        )
    live = ~empty
    df = int(np.count_nonzero(live)) - 1 - ddof
    if df < 1:
        raise ValueError(f"chi-square needs >= 2 live bins (got df={df})")
    statistic = float(np.sum((obs[live] - exp[live]) ** 2 / exp[live]))
    return TestResult(
        name=name,
        statistic=statistic,
        p_value=float(chi2_sf(statistic, df)),
        detail=f"chi2={statistic:.3f} over {df} dof",
    )


# ----------------------------------------------------------------------
# Family-wise error control
# ----------------------------------------------------------------------

class FamilyWiseGate:
    """Bonferroni gate over a family of test results.

    Collect results with :meth:`add`; :meth:`failures` returns the tests
    whose p-value falls below ``alpha_family / n_tests``.  The division
    happens at evaluation time, so the per-test threshold automatically
    tightens as the suite grows -- adding oracles can never inflate the
    suite's false-alarm probability past ``alpha_family``.
    """

    def __init__(self, alpha_family: float = 1e-6) -> None:
        if not 0.0 < alpha_family < 1.0:
            raise ValueError(f"alpha_family must be in (0, 1), got {alpha_family}")
        self.alpha_family = alpha_family
        self.results: list[TestResult] = []

    def add(self, result: TestResult) -> None:
        self.results.append(result)

    @property
    def per_test_alpha(self) -> float:
        return self.alpha_family / max(1, len(self.results))

    def failures(self) -> list[TestResult]:
        threshold = self.per_test_alpha
        return [r for r in self.results if r.p_value < threshold]

    @property
    def passed(self) -> bool:
        return not self.failures()
