"""The ``repro.cli selfcheck`` runner: invariants + oracles, instrumented.

Orchestrates the verification layers into one pass/fail report:

1. **Invariant sweep** -- the always-on checks of
   :mod:`repro.verification.invariants` exercised over a deterministic
   spread of synthetic configurations (schedule families x sizes,
   apportionment corner cases, a spend/reject accountant lifecycle, a
   metered federated meter).
2. **Oracle suite** -- the Monte-Carlo differential oracles of
   :mod:`repro.verification.oracles`.  Statistical oracles are gated
   family-wise (Bonferroni, see :class:`~repro.verification.statcheck.
   FamilyWiseGate`); exact-twin oracles must match bit-for-bit.

``deep=True`` widens the sweep: more repetitions, the LDP and local-
randomness variants, every baseline, ``b_send > 1``, and the caching-off
adaptive path.  The default (quick) suite is sized for a CI leg.

Every check runs inside a ``selfcheck.check`` span and feeds the
``selfcheck_checks_total`` / ``selfcheck_failures_total`` counters and the
``selfcheck_duration_s`` histogram (catalogued in
``docs/observability.md``).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.baselines import (
    DuchiMechanism,
    HybridMechanism,
    LaplaceMean,
    PiecewiseMechanism,
    RandomizedRounding,
    SubtractiveDithering,
)
from repro.core.sampling import BitSamplingSchedule
from repro.exceptions import PrivacyBudgetExceeded, ReproError
from repro.metrics.execution import TrialExecutor, get_executor
from repro.observability import get_metrics, get_tracer
from repro.privacy.accountant import BitMeter, PrivacyAccountant
from repro.privacy.randomized_response import RandomizedResponse
from repro.rng import ensure_rng
from repro.verification import oracles as _oracles
from repro.verification import invariants as _inv
from repro.verification.statcheck import FamilyWiseGate, TestResult

__all__ = ["CheckOutcome", "SelfCheckReport", "run_selfcheck"]

#: Family-wise false-alarm budget for the statistical oracles: the chance
#: that a fully correct implementation fails any statistical check under a
#: *fresh* seed.  (Under the default fixed seed the suite is deterministic.)
FAMILY_ALPHA = 1e-6


@dataclass(frozen=True)
class CheckOutcome:
    """One line of the selfcheck report."""

    name: str
    layer: str  # "invariant" | "oracle"
    passed: bool
    duration_s: float
    detail: str = ""
    p_value: float | None = None
    statistic: float | None = None


@dataclass
class SelfCheckReport:
    """All outcomes of one selfcheck run."""

    outcomes: list[CheckOutcome] = field(default_factory=list)
    deep: bool = False
    seed: int = 0

    @property
    def passed(self) -> bool:
        return all(outcome.passed for outcome in self.outcomes)

    @property
    def failures(self) -> list[CheckOutcome]:
        return [outcome for outcome in self.outcomes if not outcome.passed]

    def to_dict(self) -> dict:
        return {
            "passed": self.passed,
            "deep": self.deep,
            "seed": self.seed,
            "checks": [
                {
                    "name": o.name,
                    "layer": o.layer,
                    "passed": o.passed,
                    "duration_s": round(o.duration_s, 6),
                    "p_value": o.p_value,
                    "statistic": o.statistic,
                    "detail": o.detail,
                }
                for o in self.outcomes
            ],
        }

    def render(self) -> str:
        lines = [
            "| check | layer | status | p-value | detail |",
            "|---|---|---|---|---|",
        ]
        for o in self.outcomes:
            status = "ok" if o.passed else "FAIL"
            p = f"{o.p_value:.2e}" if o.p_value is not None else "-"
            lines.append(f"| {o.name} | {o.layer} | {status} | {p} | {o.detail} |")
        n_failed = len(self.failures)
        lines.append("")
        lines.append(
            f"{len(self.outcomes)} checks, {n_failed} failed"
            + ("" if n_failed else " -- all invariants and oracles hold")
        )
        return "\n".join(lines)


# ----------------------------------------------------------------------
# Invariant sweep
# ----------------------------------------------------------------------

def _invariant_checks(seed: int, deep: bool) -> list[tuple[str, Callable[[], None]]]:
    """Deterministic synthetic configurations for every invariant."""
    gen = ensure_rng(seed)
    sizes = [1, 2, 7, 16, 40] + ([60] if deep else [])
    schedules: list[tuple[str, BitSamplingSchedule]] = []
    for n_bits in sizes:
        schedules.append((f"uniform[{n_bits}]", BitSamplingSchedule.uniform(n_bits)))
        schedules.append((f"weighted[{n_bits},a=1]", BitSamplingSchedule.weighted(n_bits, 1.0)))
        schedules.append(
            (f"weighted[{n_bits},a=0.5]", BitSamplingSchedule.weighted(n_bits, 0.5))
        )
        means = np.clip(gen.normal(0.4, 0.3, size=n_bits), -0.5, 1.5)
        schedules.append((f"from-means[{n_bits}]", BitSamplingSchedule.from_bit_means(means)))
    cohorts = [0, 1, 3, 101, 4096] + ([65_537] if deep else [])

    def schedule_and_apportionment(schedule: BitSamplingSchedule) -> None:
        _inv.check_schedule_normalized(schedule)
        for n in cohorts:
            _inv.check_apportionment(n, schedule)

    checks: list[tuple[str, Callable[[], None]]] = [
        (f"schedule+apportionment/{label}", lambda s=schedule: schedule_and_apportionment(s))
        for label, schedule in schedules
    ]

    def ledger_lifecycle() -> None:
        acct = PrivacyAccountant(epsilon_budget=2.0, delta_budget=1e-4)
        for i in range(20):
            acct.spend(0.05, delta=1e-6, note=f"round {i}")
            _inv.check_ledger_conservation(acct)
        try:
            acct.spend(5.0)
        except PrivacyBudgetExceeded:
            pass
        _inv.check_ledger_conservation(acct)

    def meter_lifecycle() -> None:
        meter = BitMeter(max_bits_per_value=2, max_bits_per_client=5)
        for cid in range(8):
            meter.record(f"client-{cid}", "metric-a")
            meter.record(f"client-{cid}", "metric-b", n_bits=2)
        try:
            meter.record("client-0", "metric-b")  # over per-value cap
        except PrivacyBudgetExceeded:
            pass
        try:
            meter.record("client-1", "metric-c", n_bits=3)  # over client cap
        except PrivacyBudgetExceeded:
            pass
        _inv.check_bit_meter(meter)

    checks.append(("ledger-conservation/lifecycle", ledger_lifecycle))
    checks.append(("bit-meter/lifecycle", meter_lifecycle))
    return checks


# ----------------------------------------------------------------------
# Oracle suite
# ----------------------------------------------------------------------

def _oracle_runs(
    seed: int, deep: bool, executor: TrialExecutor | None
) -> list[tuple[str, Callable[[], _oracles.OracleResult]]]:
    reps = 400 if deep else 200
    rr = RandomizedResponse(epsilon=2.0)
    runs: list[tuple[str, Callable[[], _oracles.OracleResult]]] = [
        (
            "basic-unbiased/central",
            lambda: _oracles.basic_unbiasedness_oracle(seed=seed, n_reps=reps),
        ),
        (
            "basic-variance-bound",
            lambda: _oracles.basic_variance_bound_oracle(seed=seed + 1, n_reps=reps),
        ),
        ("rr-debias", lambda: _oracles.rr_debias_oracle(seed=seed + 2)),
        (
            "adaptive-unbiased/caching",
            lambda: _oracles.adaptive_unbiasedness_oracle(seed=seed + 3, n_reps=reps),
        ),
        (
            "twin/batch-vs-serial",
            lambda: _oracles.serial_twin_oracle(seed=seed + 4),
        ),
        (
            "twin/batch-vs-serial/ldp",
            lambda: _oracles.serial_twin_oracle(
                seed=seed + 5, perturbation=RandomizedResponse(epsilon=2.0)
            ),
        ),
        (
            "twin/executor",
            lambda: _oracles.executor_twin_oracle(seed=seed + 6, executor=executor),
        ),
        ("secure-agg/exact-sum", lambda: _oracles.secure_agg_oracle(seed=seed + 7)),
        (
            "twin/columnar-vs-object",
            lambda: _oracles.columnar_twin_oracle(seed=seed + 18),
        ),
        (
            "variance-estimator/centered",
            lambda: _oracles.variance_estimator_oracle(seed=seed + 8, n_reps=24),
        ),
        (
            "baseline-unbiased/laplace",
            lambda: _oracles.baseline_unbiasedness_oracle(
                LaplaceMean(0.0, 255.0, epsilon=1.0), seed=seed + 9, n_reps=reps
            ),
        ),
    ]
    if deep:
        runs += [
            (
                "basic-unbiased/local",
                lambda: _oracles.basic_unbiasedness_oracle(
                    seed=seed + 10, n_reps=reps, randomness="local"
                ),
            ),
            (
                "basic-unbiased/ldp",
                lambda: _oracles.basic_unbiasedness_oracle(
                    seed=seed + 11, n_reps=reps, perturbation=rr
                ),
            ),
            (
                "basic-unbiased/b_send=2",
                lambda: _oracles.basic_unbiasedness_oracle(
                    seed=seed + 12, n_reps=reps, b_send=2, alpha_schedule=0.5
                ),
            ),
            (
                "basic-unbiased/alpha=0.5",
                lambda: _oracles.basic_unbiasedness_oracle(
                    seed=seed + 13, n_reps=reps, alpha_schedule=0.5
                ),
            ),
            (
                "adaptive-unbiased/no-caching",
                lambda: _oracles.adaptive_unbiasedness_oracle(
                    seed=seed + 14, n_reps=reps, caching=False
                ),
            ),
            (
                "adaptive-unbiased/ldp",
                lambda: _oracles.adaptive_unbiasedness_oracle(
                    seed=seed + 15, n_reps=reps, perturbation=rr
                ),
            ),
            (
                "variance-estimator/moments",
                lambda: _oracles.variance_estimator_oracle(
                    seed=seed + 16, n_reps=24, method="moments"
                ),
            ),
            (
                "secure-agg/exact-sum/large",
                lambda: _oracles.secure_agg_oracle(
                    seed=seed + 17, n_clients=48, vector_length=32, n_dropouts=8
                ),
            ),
            (
                "twin/columnar-vs-object/basic",
                lambda: _oracles.columnar_twin_oracle(seed=seed + 30, mode="basic"),
            ),
            (
                "twin/columnar-vs-object/ldp",
                lambda: _oracles.columnar_twin_oracle(seed=seed + 31, perturbation=rr),
            ),
        ]
        for offset, baseline in enumerate(
            [
                DuchiMechanism(0.0, 255.0, epsilon=1.0),
                PiecewiseMechanism(0.0, 255.0, epsilon=1.0),
                HybridMechanism(0.0, 255.0, epsilon=1.0),
                RandomizedRounding(0.0, 255.0),
                SubtractiveDithering(0.0, 255.0),
            ]
        ):
            runs.append(
                (
                    f"baseline-unbiased/{type(baseline).__name__}",
                    lambda b=baseline, o=offset: _oracles.baseline_unbiasedness_oracle(
                        b, seed=seed + 20 + o, n_reps=reps
                    ),
                )
            )
    return runs


# ----------------------------------------------------------------------
# Runner
# ----------------------------------------------------------------------

def run_selfcheck(
    deep: bool = False,
    seed: int = 0,
    executor: TrialExecutor | None = None,
) -> SelfCheckReport:
    """Run the full verification suite and return the report.

    ``executor`` feeds the executor-twin oracle (default: the process-wide
    executor from ``REPRO_WORKERS`` -- running selfcheck under different
    worker counts is exactly how CI exercises the bit-identity contract).
    """
    tracer = get_tracer()
    metrics = get_metrics()
    report = SelfCheckReport(deep=deep, seed=seed)
    exec_for_twin = executor if executor is not None else get_executor()

    with tracer.span("selfcheck", {"deep": deep, "seed": seed}):
        with tracer.span("selfcheck.invariants"):
            for name, check in _invariant_checks(seed, deep):
                report.outcomes.append(_run_one(name, "invariant", check, tracer, metrics))

        gate = FamilyWiseGate(alpha_family=FAMILY_ALPHA)
        oracle_outcomes: list[tuple[int, _oracles.OracleResult]] = []
        with tracer.span("selfcheck.oracles"):
            for name, run in _oracle_runs(seed, deep, exec_for_twin):
                start = time.perf_counter()
                with tracer.span("selfcheck.check", {"check": name, "layer": "oracle"}):
                    try:
                        result = run()
                    except ReproError as exc:
                        result = _oracles.OracleResult(
                            name=name, passed=False, detail=f"raised {exc!r}"
                        )
                elapsed = time.perf_counter() - start
                index = len(report.outcomes)
                report.outcomes.append(
                    CheckOutcome(
                        name=name,
                        layer="oracle",
                        passed=result.passed,
                        duration_s=elapsed,
                        detail=result.detail,
                        p_value=result.p_value,
                        statistic=result.statistic,
                    )
                )
                if result.p_value is not None:
                    gate.add(
                        TestResult(
                            name=name,
                            statistic=result.statistic or 0.0,
                            p_value=result.p_value,
                            detail=result.detail,
                        )
                    )
                    oracle_outcomes.append((index, result))

        # Family-wise verdict: a statistical oracle fails only if its
        # p-value breaches the Bonferroni-adjusted threshold (exact-twin
        # and tolerance oracles keep their own verdicts).
        failing = {t.name for t in gate.failures()}
        for index, result in oracle_outcomes:
            outcome = report.outcomes[index]
            passed = outcome.name not in failing
            report.outcomes[index] = CheckOutcome(
                name=outcome.name,
                layer=outcome.layer,
                passed=passed,
                duration_s=outcome.duration_s,
                detail=outcome.detail
                + f" [alpha={gate.per_test_alpha:.1e} family={gate.alpha_family:.0e}]",
                p_value=outcome.p_value,
                statistic=outcome.statistic,
            )

    if metrics.enabled:
        metrics.counter("selfcheck_checks_total").inc(len(report.outcomes))
        metrics.counter("selfcheck_failures_total").inc(len(report.failures))
    return report


def _run_one(name: str, layer: str, check: Callable[[], None], tracer, metrics) -> CheckOutcome:
    start = time.perf_counter()
    with tracer.span("selfcheck.check", {"check": name, "layer": layer}):
        try:
            check()
            passed, detail = True, ""
        except ReproError as exc:
            passed, detail = False, str(exc)
    elapsed = time.perf_counter() - start
    if metrics.enabled:
        metrics.histogram("selfcheck_duration_s").observe(elapsed)
    return CheckOutcome(name=name, layer=layer, passed=passed, duration_s=elapsed, detail=detail)
