"""Seeded Monte-Carlo differential oracles for every estimator family.

Each oracle runs a fixed, seeded experiment and compares the outcome to a
*ground truth the implementation cannot influence*: a closed-form
expectation (unbiasedness, the Lemma 3.1 variance bound, the randomized-
response debias identity), an exact plaintext twin (secure aggregation,
batch/serial and parallel/serial bit-identity -- the PR-2 discipline made
reusable), or a tolerance against the population statistic.

All oracles consume randomness exclusively through spawned children of the
caller's seed, so a given ``(oracle, seed)`` pair is fully deterministic --
the statistical machinery in :mod:`repro.verification.statcheck` governs
what happens when somebody *changes* the seed.

Oracles accept the object under test where injection is useful (e.g.
``rr_debias_oracle(perturbation=...)``), which is how the test suite proves
the oracle catches deliberately broken implementations.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.baselines import RangeMeanEstimator
from repro.core.adaptive import AdaptiveBitPushing
from repro.core.basic import BasicBitPushing
from repro.core.client_plane import ClientBatch
from repro.core.encoding import FixedPointEncoder
from repro.core.protocol import BitPerturbation, theoretical_variance
from repro.core.sampling import BitSamplingSchedule
from repro.core.variance import VarianceEstimator
from repro.federated.client import ClientDevice
from repro.federated.cohort import attribute_equals
from repro.federated.dropout import DropoutModel
from repro.federated.network import NetworkModel
from repro.federated.secure_agg.protocol import SecureAggregationSession
from repro.federated.server import FederatedMeanQuery
from repro.metrics.execution import ParallelExecutor, SerialExecutor, TrialExecutor
from repro.metrics.experiment import run_trials
from repro.privacy.randomized_response import RandomizedResponse
from repro.rng import ensure_rng
from repro.verification.invariants import check_estimate, check_secure_sum
from repro.verification.statcheck import TestResult, variance_upper_tail, z_test

__all__ = [
    "OracleResult",
    "adaptive_unbiasedness_oracle",
    "baseline_unbiasedness_oracle",
    "basic_unbiasedness_oracle",
    "basic_variance_bound_oracle",
    "columnar_twin_oracle",
    "executor_twin_oracle",
    "rr_debias_oracle",
    "secure_agg_oracle",
    "serial_twin_oracle",
    "variance_estimator_oracle",
]


@dataclass(frozen=True)
class OracleResult:
    """Outcome of one oracle run.

    ``p_value`` is ``None`` for exact (differential / tolerance) oracles;
    statistical oracles report the p-value the family-wise gate consumes.
    """

    name: str
    passed: bool
    detail: str
    statistic: float | None = None
    p_value: float | None = None
    n_reps: int = 0


def _from_test(name: str, test: TestResult, alpha: float, n_reps: int) -> OracleResult:
    return OracleResult(
        name=name,
        passed=test.p_value >= alpha,
        detail=test.detail,
        statistic=test.statistic,
        p_value=test.p_value,
        n_reps=n_reps,
    )


def _fixed_population(seed_child: np.random.Generator, n_clients: int, n_bits: int) -> np.ndarray:
    """A fixed integer population on the ``n_bits`` grid (uniform draw)."""
    return seed_child.integers(0, 2**n_bits, size=n_clients).astype(np.float64)


def _true_bit_means(values: np.ndarray, n_bits: int) -> np.ndarray:
    encoded = values.astype(np.uint64)
    return np.array(
        [float(np.mean((encoded >> np.uint64(j)) & np.uint64(1))) for j in range(n_bits)]
    )


# ----------------------------------------------------------------------
# Closed-form oracles
# ----------------------------------------------------------------------

def basic_unbiasedness_oracle(
    seed: int = 0,
    n_reps: int = 300,
    n_clients: int = 4096,
    n_bits: int = 8,
    alpha_schedule: float = 1.0,
    randomness: str = "central",
    b_send: int = 1,
    perturbation: BitPerturbation | None = None,
    squash_threshold: float = 0.0,
    alpha: float = 1e-9,
) -> OracleResult:
    """``E[estimate] = population mean`` for the basic estimator.

    Self-normalized z-test: the mean of ``n_reps`` seeded estimates against
    the fixed population's exact mean, studentized by the empirical standard
    error.  Valid with or without a perturbation, for both randomness modes
    and any ``b_send`` (squashing, if enabled, is a *biased* post-process --
    callers testing it should expect failure and invert the assertion).
    """
    parent = ensure_rng(seed)
    pop_gen, *rep_gens = parent.spawn(n_reps + 1)
    values = _fixed_population(pop_gen, n_clients, n_bits)
    truth = float(values.mean())
    encoder = FixedPointEncoder.for_integers(n_bits)
    estimator = BasicBitPushing(
        encoder,
        schedule=BitSamplingSchedule.weighted(n_bits, alpha=alpha_schedule),
        b_send=b_send,
        randomness=randomness,
        perturbation=perturbation,
        squash_threshold=squash_threshold,
    )
    estimates = np.empty(n_reps)
    for r, gen in enumerate(rep_gens):
        result = estimator.estimate(values, rng=gen)
        check_estimate(result)
        estimates[r] = result.value
    stderr = float(np.std(estimates, ddof=1)) / math.sqrt(n_reps)
    name = f"basic-unbiased[{randomness},b={b_send},ldp={perturbation is not None}]"
    test = z_test(float(estimates.mean()), truth, stderr, name=name)
    return _from_test(name, test, alpha, n_reps)


def basic_variance_bound_oracle(
    seed: int = 0,
    n_reps: int = 300,
    n_clients: int = 4096,
    n_bits: int = 8,
    alpha_schedule: float = 1.0,
    alpha: float = 1e-9,
) -> OracleResult:
    """Empirical estimator variance never exceeds the Lemma 3.1 bound.

    One-sided chi-square upper-tail test: the central (quasi-Monte-Carlo)
    assignment may *beat* the bound thanks to its finite-population
    correction, but exceeding it means a broken schedule, weight, or
    debiasing step.
    """
    parent = ensure_rng(seed)
    pop_gen, *rep_gens = parent.spawn(n_reps + 1)
    values = _fixed_population(pop_gen, n_clients, n_bits)
    encoder = FixedPointEncoder.for_integers(n_bits)
    schedule = BitSamplingSchedule.weighted(n_bits, alpha=alpha_schedule)
    estimator = BasicBitPushing(encoder, schedule=schedule)
    estimates = np.array([estimator.estimate(values, rng=g).value for g in rep_gens])
    bound = theoretical_variance(_true_bit_means(values, n_bits), schedule, n_clients)
    name = "basic-variance<=lemma3.1"
    test = variance_upper_tail(float(np.var(estimates, ddof=1)), bound, n_reps, name=name)
    return _from_test(name, test, alpha, n_reps)


def rr_debias_oracle(
    seed: int = 0,
    n_bits_reports: int = 200_000,
    epsilon: float = 1.0,
    true_mean: float = 0.3,
    perturbation: BitPerturbation | None = None,
    alpha: float = 1e-9,
) -> OracleResult:
    """The randomized-response debias map inverts the perturbation exactly.

    Perturb a bit vector with *known* mean, debias the reported mean, and
    z-test against the known mean using the exact reported-domain standard
    error.  Pass a custom ``perturbation`` to test an injected mechanism --
    a wrong debias constant shifts the estimate by O(1) against an O(1/sqrt
    (N)) standard error and fails at any threshold.
    """
    rr = perturbation if perturbation is not None else RandomizedResponse(epsilon=epsilon)
    parent = ensure_rng(seed)
    n_ones = int(round(true_mean * n_bits_reports))
    bits = np.zeros(n_bits_reports, dtype=np.uint8)
    bits[:n_ones] = 1
    exact_mean = n_ones / n_bits_reports
    reported = np.asarray(rr.perturb_bits(bits, parent), dtype=np.float64)
    estimate = float(np.asarray(rr.unbias_bit_means(np.array([reported.mean()])))[0])
    # Reported-domain distribution under an honest eps-RR mechanism.
    p = math.exp(epsilon) / (1.0 + math.exp(epsilon))
    reported_mean = (1.0 - p) + (2.0 * p - 1.0) * exact_mean
    std_of_mean = math.sqrt(reported_mean * (1.0 - reported_mean) / n_bits_reports) / (
        2.0 * p - 1.0
    )
    name = f"rr-debias[eps={epsilon:g}]"
    test = z_test(estimate, exact_mean, std_of_mean, name=name)
    return _from_test(name, test, alpha, n_reps=1)


def adaptive_unbiasedness_oracle(
    seed: int = 0,
    n_reps: int = 300,
    n_clients: int = 4096,
    n_bits: int = 8,
    caching: bool = True,
    perturbation: BitPerturbation | None = None,
    alpha: float = 1e-9,
) -> OracleResult:
    """``E[estimate] = population mean`` for the two-round adaptive estimator."""
    parent = ensure_rng(seed)
    pop_gen, *rep_gens = parent.spawn(n_reps + 1)
    values = _fixed_population(pop_gen, n_clients, n_bits)
    truth = float(values.mean())
    encoder = FixedPointEncoder.for_integers(n_bits)
    estimator = AdaptiveBitPushing(encoder, caching=caching, perturbation=perturbation)
    estimates = np.empty(n_reps)
    for r, gen in enumerate(rep_gens):
        result = estimator.estimate(values, rng=gen)
        check_estimate(result)
        estimates[r] = result.value
    stderr = float(np.std(estimates, ddof=1)) / math.sqrt(n_reps)
    name = f"adaptive-unbiased[caching={caching},ldp={perturbation is not None}]"
    test = z_test(float(estimates.mean()), truth, stderr, name=name)
    return _from_test(name, test, alpha, n_reps)


def variance_estimator_oracle(
    seed: int = 0,
    n_reps: int = 60,
    n_clients: int = 20_000,
    n_bits: int = 8,
    method: str = "centered",
    tolerance: float = 0.05,
) -> OracleResult:
    """The Section 3.4 variance estimator tracks the population variance.

    Tolerance oracle rather than an exact z-test: both decompositions carry
    a small O(1/n) plug-in bias (``E[(x - m_hat)^2]`` inflates by
    ``Var[m_hat]``; ``E[m_hat^2]`` inflates ``m^2`` likewise), so the check
    asserts the relative error of the mean-of-estimates stays under
    ``tolerance`` instead of exactly zero.
    """
    parent = ensure_rng(seed)
    pop_gen, *rep_gens = parent.spawn(n_reps + 1)
    values = _fixed_population(pop_gen, n_clients, n_bits)
    truth = float(values.var())
    estimator = VarianceEstimator(FixedPointEncoder.for_integers(n_bits), method=method)
    estimates = np.array([estimator.estimate(values, rng=g).value for g in rep_gens])
    if np.any(~np.isfinite(estimates)) or np.any(estimates < 0):
        return OracleResult(
            name=f"variance-{method}",
            passed=False,
            detail="variance estimates must be finite and non-negative",
            n_reps=n_reps,
        )
    rel_err = abs(float(estimates.mean()) - truth) / truth
    return OracleResult(
        name=f"variance-{method}",
        passed=rel_err < tolerance,
        detail=f"relative error {rel_err:.4f} vs tolerance {tolerance} (truth {truth:.4g})",
        statistic=rel_err,
        n_reps=n_reps,
    )


def baseline_unbiasedness_oracle(
    baseline: RangeMeanEstimator,
    seed: int = 0,
    n_reps: int = 300,
    n_clients: int = 4096,
    alpha: float = 1e-9,
) -> OracleResult:
    """``E[estimate] = population mean`` for a prior-work baseline."""
    parent = ensure_rng(seed)
    pop_gen, *rep_gens = parent.spawn(n_reps + 1)
    width = baseline.high - baseline.low
    values = baseline.low + width * pop_gen.random(n_clients)
    truth = float(values.mean())
    estimates = np.array([baseline.estimate(values, rng=g).value for g in rep_gens])
    stderr = float(np.std(estimates, ddof=1)) / math.sqrt(n_reps)
    name = f"baseline-unbiased[{baseline.method}]"
    test = z_test(float(estimates.mean()), truth, stderr, name=name)
    return _from_test(name, test, alpha, n_reps)


# ----------------------------------------------------------------------
# Differential (exact-twin) oracles
# ----------------------------------------------------------------------

def serial_twin_oracle(
    seed: int = 0,
    n_reps: int = 32,
    n_clients: int = 512,
    n_bits: int = 8,
    perturbation: BitPerturbation | None = None,
    squash_threshold: float = 0.0,
) -> OracleResult:
    """``estimate_batch`` is bit-identical to the serial ``estimate`` loop.

    The PR-2 vectorization discipline as a standing check: both paths
    consume per-repetition child generators in the same order, so any
    divergence at all -- one ULP -- means the batch kernel drifted.
    """
    parent = ensure_rng(seed)
    pop_gen = parent.spawn(1)[0]
    values = pop_gen.integers(0, 2**n_bits, size=(n_reps, n_clients)).astype(np.float64)
    encoder = FixedPointEncoder.for_integers(n_bits)
    estimator = BasicBitPushing(
        encoder, perturbation=perturbation, squash_threshold=squash_threshold
    )
    seeds = [int(s) for s in parent.integers(0, 2**31, size=n_reps)]
    batch = estimator.estimate_batch(values, [np.random.default_rng(s) for s in seeds])
    serial = np.array(
        [
            estimator.estimate(values[r], rng=np.random.default_rng(seeds[r])).value
            for r in range(n_reps)
        ]
    )
    max_diff = float(np.max(np.abs(batch - serial))) if n_reps else 0.0
    identical = bool(np.array_equal(batch, serial))
    return OracleResult(
        name=f"twin-batch-vs-serial[ldp={perturbation is not None}]",
        passed=identical,
        detail=(
            "bit-identical" if identical else f"batch/serial max |diff| = {max_diff:.3e}"
        ),
        statistic=max_diff,
        n_reps=n_reps,
    )


def executor_twin_oracle(
    seed: int = 0,
    n_reps: int = 24,
    n_clients: int = 512,
    n_bits: int = 8,
    executor: TrialExecutor | None = None,
) -> OracleResult:
    """Parallel trial execution is bit-identical to the serial executor.

    Runs one experimental cell under :class:`SerialExecutor` and under
    ``executor`` (default: a two-worker :class:`ParallelExecutor`) and
    requires exactly equal estimates *and* truths.  On platforms without
    ``fork`` the parallel backend degrades to serial with a warning, which
    still exercises the chunked code path.
    """
    encoder = FixedPointEncoder.for_integers(n_bits)
    estimator = BasicBitPushing(encoder)

    def make_data(gen: np.random.Generator) -> np.ndarray:
        return gen.integers(0, 2**n_bits, size=n_clients).astype(np.float64)

    def run_estimator(values: np.ndarray, gen: np.random.Generator) -> float:
        return estimator.estimate(values, rng=gen).value

    serial = run_trials(
        make_data, run_estimator, n_reps=n_reps, seed=seed, executor=SerialExecutor()
    )
    other = executor if executor is not None else ParallelExecutor(workers=2)
    parallel = run_trials(make_data, run_estimator, n_reps=n_reps, seed=seed, executor=other)
    identical = bool(
        np.array_equal(serial.estimates, parallel.estimates)
        and np.array_equal(serial.truths, parallel.truths)
    )
    max_diff = float(np.max(np.abs(serial.estimates - parallel.estimates)))
    return OracleResult(
        name=f"twin-executor[{type(other).__name__}]",
        passed=identical,
        detail=(
            "bit-identical across executors"
            if identical
            else f"executor max |diff| = {max_diff:.3e}"
        ),
        statistic=max_diff,
        n_reps=n_reps,
    )


def columnar_twin_oracle(
    seed: int = 0,
    n_clients: int = 600,
    n_bits: int = 8,
    mode: str = "adaptive",
    perturbation: BitPerturbation | None = None,
    chunk: int = 37,
) -> OracleResult:
    """A columnar federated round is bit-identical to the object-path round.

    Runs the same :class:`FederatedMeanQuery` configuration (dropout +
    lossy network + eligibility filter + subsampled cohort) three times
    from one seed: over ``ClientDevice`` objects, over the equivalent
    :class:`ClientBatch` with a deliberately awkward chunk size, and over
    the batch again with ``chunk = 1`` (every chunk boundary exercised).
    All three estimates, bit-mean vectors, and report counts must be
    exactly equal -- the PR-2 twin discipline extended to the whole
    columnar client plane.
    """
    parent = ensure_rng(seed)
    pop_gen, seed_gen = parent.spawn(2)
    sizes = pop_gen.integers(1, 4, size=n_clients)
    devices = [
        ClientDevice(
            i,
            pop_gen.integers(0, 2**n_bits, size=int(sizes[i])).astype(np.float64),
            {"geo": "us" if i % 2 else "eu"},
        )
        for i in range(n_clients)
    ]
    batch = ClientBatch.from_devices(devices)
    run_seed = int(seed_gen.integers(0, 2**31))

    def run(population, chunk_clients):
        # Fresh query per run: DropoutRateTracker state must not leak
        # between the twins.
        query = FederatedMeanQuery(
            FixedPointEncoder.for_integers(n_bits),
            mode=mode,
            perturbation=perturbation,
            dropout=DropoutModel(rate=0.1),
            network=NetworkModel(loss_rate=0.05),
            chunk_clients=chunk_clients,
        )
        return query.run(
            population,
            rng=np.random.default_rng(run_seed),
            eligibility=attribute_equals("geo", "us"),
            cohort_size=max(2, n_clients // 3),
        )

    reference = run(devices, None)
    results = {
        f"chunk={chunk}": run(batch, chunk),
        "chunk=1": run(batch, 1),
    }
    for label, result in results.items():
        identical = (
            result.value == reference.value
            and np.array_equal(result.bit_means, reference.bit_means)
            and np.array_equal(result.counts, reference.counts)
        )
        if not identical:
            return OracleResult(
                name=f"twin-columnar-vs-object[{mode},ldp={perturbation is not None}]",
                passed=False,
                detail=(
                    f"columnar path ({label}) diverged: "
                    f"|diff| = {abs(result.value - reference.value):.3e}"
                ),
                statistic=abs(result.value - reference.value),
                n_reps=1,
            )
    return OracleResult(
        name=f"twin-columnar-vs-object[{mode},ldp={perturbation is not None}]",
        passed=True,
        detail=f"bit-identical across object/columnar paths (chunks: {chunk}, 1)",
        statistic=0.0,
        n_reps=1,
    )


def secure_agg_oracle(
    seed: int = 0,
    n_clients: int = 24,
    vector_length: int = 16,
    n_dropouts: int = 4,
    value_range: int = 1 << 20,
) -> OracleResult:
    """The masked secure sum equals the plaintext sum of submitted vectors.

    Random integer vectors, a random surviving subset above the Shamir
    threshold, exact equality -- the invariant the whole "server learns only
    the sum" argument rests on.
    """
    gen = ensure_rng(seed)
    threshold = max(2, math.ceil(2 * n_clients / 3))
    if n_clients - n_dropouts < threshold:
        raise ValueError(
            f"{n_dropouts} dropouts from {n_clients} clients breaks threshold {threshold}"
        )
    session = SecureAggregationSession(
        n_clients=n_clients,
        vector_length=vector_length,
        threshold=threshold,
        rng=gen,
    )
    vectors = gen.integers(0, value_range, size=(n_clients, vector_length))
    dropouts = set(gen.choice(n_clients, size=n_dropouts, replace=False).tolist())
    submitted = [cid for cid in range(n_clients) if cid not in dropouts]
    for cid in submitted:
        session.submit(cid, [int(v) for v in vectors[cid]])
    total = np.asarray(session.finalize(), dtype=np.int64)
    plaintext = vectors[submitted].sum(axis=0).astype(np.int64)
    try:
        check_secure_sum(total, plaintext, context="secure-agg oracle")
    except Exception as exc:  # InvariantViolation carries the first mismatch
        return OracleResult(
            name="secure-agg-exact-sum",
            passed=False,
            detail=str(exc),
            n_reps=1,
        )
    return OracleResult(
        name="secure-agg-exact-sum",
        passed=True,
        detail=(
            f"{len(submitted)}/{n_clients} clients, {n_dropouts} dropouts, "
            f"sum exact over {vector_length} components"
        ),
        statistic=0.0,
        n_reps=1,
    )
