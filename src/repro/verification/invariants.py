"""Cheap always-on runtime invariants.

Every function here is O(state size) or better and raises
:class:`~repro.exceptions.InvariantViolation` with a precise message when the
checked structure breaks a guarantee the library's analysis relies on.  They
are called from three places:

* hot paths that can afford them (the federated server asserts
  :func:`check_secure_sum` on every secure-aggregation shard -- O(n) next to
  the O(shard**2) masking work it audits);
* ``repro.cli selfcheck``, which sweeps them over synthetic configurations;
* the property-test suite, which hammers them under hypothesis.

None of these checks consumes randomness, so wiring them into a code path
never perturbs a seeded experiment.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from repro.core.sampling import BitSamplingSchedule, apportion_counts
from repro.exceptions import InvariantViolation

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.core.results import MeanEstimate
    from repro.privacy.accountant import BitMeter, PrivacyAccountant

__all__ = [
    "check_apportionment",
    "check_bit_meter",
    "check_estimate",
    "check_ledger_conservation",
    "check_schedule_normalized",
    "check_secure_sum",
]

#: Tolerance for float accumulations (schedule mass, ledger totals).
_ATOL = 1e-9


def check_schedule_normalized(schedule: BitSamplingSchedule) -> None:
    """A schedule is a probability vector: finite, non-negative, sums to 1."""
    probs = schedule.probabilities
    if np.any(~np.isfinite(probs)):
        raise InvariantViolation("schedule contains non-finite probabilities")
    if np.any(probs < 0.0):
        raise InvariantViolation(f"schedule contains negative probability {probs.min()}")
    total = float(probs.sum())
    if abs(total - 1.0) > _ATOL:
        raise InvariantViolation(f"schedule mass is {total!r}, not 1 (drift {total - 1.0:.3e})")


def check_apportionment(n_clients: int, schedule: BitSamplingSchedule) -> np.ndarray:
    """Largest-remainder apportionment exactness (paper Section 3.1 note).

    The returned counts must (a) sum to exactly ``n_clients``, (b) give zero
    clients to zero-probability bits, and (c) each sit strictly within 1 of
    the real-valued quota ``p_j * n``.  Returns the counts so callers can
    reuse them.
    """
    counts = apportion_counts(n_clients, schedule)
    total = int(counts.sum())
    if total != n_clients:
        raise InvariantViolation(
            f"apportionment leaks clients: counts sum to {total}, expected {n_clients}"
        )
    if np.any(counts < 0):
        raise InvariantViolation("apportionment produced a negative count")
    zero_prob = schedule.probabilities == 0.0
    if np.any(counts[zero_prob] != 0):
        raise InvariantViolation("apportionment assigned clients to zero-probability bits")
    quotas = schedule.probabilities * n_clients
    drift = np.abs(counts - quotas)
    if np.any(drift >= 1.0):
        j = int(np.argmax(drift))
        raise InvariantViolation(
            f"apportionment drift |{counts[j]} - {quotas[j]:.6f}| >= 1 at bit {j}"
        )
    return counts


def check_secure_sum(
    secure_sums: np.ndarray,
    plaintext_sums: np.ndarray,
    context: str = "secure aggregation",
) -> None:
    """The masked protocol must reproduce the plaintext sum *exactly*.

    Secure aggregation is exact integer arithmetic in a prime field -- any
    deviation at all means mask cancellation or share reconstruction broke.
    """
    secure = np.asarray(secure_sums)
    plain = np.asarray(plaintext_sums)
    if secure.shape != plain.shape:
        raise InvariantViolation(
            f"{context}: sum shape {secure.shape} != plaintext shape {plain.shape}"
        )
    if not np.array_equal(secure, plain):
        bad = np.flatnonzero(secure != plain)
        j = int(bad[0])
        raise InvariantViolation(
            f"{context}: {bad.size} component(s) disagree with the plaintext sum "
            f"(first at index {j}: secure {secure[j]!r} != plaintext {plain[j]!r})"
        )


def check_ledger_conservation(accountant: "PrivacyAccountant") -> None:
    """The cached running totals must equal the ledger's entry sums.

    Also asserts the spent totals never exceed a configured budget (beyond
    float tolerance) -- the accountant's entire reason to exist.
    """
    eps_from_entries = sum(entry.epsilon for entry in accountant.entries)
    delta_from_entries = sum(entry.delta for entry in accountant.entries)
    if abs(eps_from_entries - accountant.spent_epsilon) > _ATOL:
        raise InvariantViolation(
            f"ledger epsilon drift: cached {accountant.spent_epsilon!r} != "
            f"entry sum {eps_from_entries!r}"
        )
    if abs(delta_from_entries - accountant.spent_delta) > _ATOL:
        raise InvariantViolation(
            f"ledger delta drift: cached {accountant.spent_delta!r} != "
            f"entry sum {delta_from_entries!r}"
        )
    if (
        accountant.epsilon_budget is not None
        and accountant.spent_epsilon > accountant.epsilon_budget + 1e-9
    ):
        raise InvariantViolation(
            f"ledger overspent epsilon: {accountant.spent_epsilon} > "
            f"budget {accountant.epsilon_budget}"
        )
    if (
        accountant.delta_budget is not None
        and accountant.spent_delta > accountant.delta_budget + 1e-12
    ):
        raise InvariantViolation(
            f"ledger overspent delta: {accountant.spent_delta} > "
            f"budget {accountant.delta_budget}"
        )


def check_bit_meter(meter: "BitMeter") -> None:
    """Every metered counter respects its cap and the books balance.

    Checks: no ghost (zero) entries, per-value totals within
    ``max_bits_per_value``, per-client totals within ``max_bits_per_client``,
    per-client totals equal to the sum of that client's per-value totals, and
    ``total_bits`` equal to the population-wide sum.
    """
    per_client_from_values: dict = {}
    for (client_id, value_id), bits in meter._per_value.items():
        if bits <= 0:
            raise InvariantViolation(
                f"meter holds a ghost entry for {(client_id, value_id)!r} ({bits} bits)"
            )
        if bits > meter.max_bits_per_value:
            raise InvariantViolation(
                f"meter over cap: {bits} bits of {value_id!r} from {client_id!r} "
                f"(cap {meter.max_bits_per_value})"
            )
        per_client_from_values[client_id] = per_client_from_values.get(client_id, 0) + bits
    for client_id, bits in meter._per_client.items():
        if bits <= 0:
            raise InvariantViolation(f"meter holds a ghost client entry for {client_id!r}")
        if meter.max_bits_per_client is not None and bits > meter.max_bits_per_client:
            raise InvariantViolation(
                f"meter over client cap: {client_id!r} at {bits} bits "
                f"(cap {meter.max_bits_per_client})"
            )
        if per_client_from_values.get(client_id, 0) != bits:
            raise InvariantViolation(
                f"meter books do not balance for {client_id!r}: per-client {bits} != "
                f"per-value sum {per_client_from_values.get(client_id, 0)}"
            )
    if set(per_client_from_values) != set(meter._per_client):
        raise InvariantViolation("meter per-value and per-client key sets disagree")
    expected_total = sum(per_client_from_values.values())
    if meter.total_bits != expected_total:
        raise InvariantViolation(
            f"meter total_bits {meter.total_bits} != per-client sum {expected_total}"
        )


def check_estimate(estimate: "MeanEstimate") -> None:
    """Structural sanity of a mean estimate: finite value, books that add up.

    Per-round report counts must sum to that round's client count times the
    bits each client sends (every survivor reports), and the decoded value
    must be finite.
    """
    if not np.isfinite(estimate.value):
        raise InvariantViolation(f"estimate value is not finite: {estimate.value!r}")
    if np.any(~np.isfinite(estimate.bit_means)):
        raise InvariantViolation("estimate bit means contain non-finite entries")
    for i, round_summary in enumerate(estimate.rounds):
        total_reports = int(np.sum(round_summary.counts))
        if round_summary.n_clients and total_reports % round_summary.n_clients != 0:
            raise InvariantViolation(
                f"round {i}: {total_reports} reports is not a whole number of "
                f"reports per client for {round_summary.n_clients} clients"
            )
        if np.any(round_summary.counts < 0):
            raise InvariantViolation(f"round {i}: negative report count")
