"""Closed-form accuracy predictions and cohort-size planning.

The paper's deployment workflow leans on analysis: "offline simulations are
sufficient to set the parameters for online noise" (Section 4.3).  This
module provides the calculators behind that workflow:

* :func:`predicted_variance` -- Lemma 3.1 extended with the exact
  randomized-response term of Section 3.3, so predictions cover both the
  noise-free and the epsilon-LDP estimator;
* :func:`predicted_nrmse` -- the same, expressed as the paper's headline
  metric;
* :func:`plan_cohort_size` -- inverts the prediction: the smallest cohort
  whose predicted NRMSE meets a target, given (an estimate of) the bit
  means -- the "how many clients do we need?" question every rollout asks;
* :func:`dithering_variance` -- the subtractive-dithering comparison point,
  whose estimate variance is a constant fraction of the squared range.

Tests cross-check every formula against Monte-Carlo simulation.
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.sampling import BitSamplingSchedule
from repro.exceptions import ConfigurationError

__all__ = [
    "per_report_bit_variance",
    "predicted_variance",
    "predicted_nrmse",
    "plan_cohort_size",
    "dithering_variance",
]


def per_report_bit_variance(bit_mean: float, epsilon: float | None = None) -> float:
    """Variance of one (debiased) report of a bit with true mean ``bit_mean``.

    Without DP this is the Bernoulli variance ``m (1 - m)``.  Under
    randomized response with parameter ``epsilon``, the reported bit is
    Bernoulli(``q``) with ``q = m p + (1 - m)(1 - p)`` and the debiasing
    map divides by ``(2p - 1)``, so the variance is
    ``q (1 - q) / (2p - 1)**2`` -- which approaches the paper's
    mean-independent ``e^eps / (e^eps - 1)**2`` constant for small epsilon.
    """
    if not 0.0 <= bit_mean <= 1.0:
        raise ConfigurationError(f"bit_mean must be in [0, 1], got {bit_mean}")
    if epsilon is None:
        return bit_mean * (1.0 - bit_mean)
    if epsilon <= 0:
        raise ConfigurationError(f"epsilon must be positive, got {epsilon}")
    p = math.exp(epsilon) / (1.0 + math.exp(epsilon))
    q = bit_mean * p + (1.0 - bit_mean) * (1.0 - p)
    return q * (1.0 - q) / (2.0 * p - 1.0) ** 2


def predicted_variance(
    bit_means: np.ndarray,
    schedule: BitSamplingSchedule,
    n_clients: int,
    b_send: int = 1,
    epsilon: float | None = None,
) -> float:
    """Predicted estimator variance (encoded domain), Lemma 3.1 + Section 3.3.

    ``V = (1 / (n b_send)) * sum_j 4^j v_j / p_j`` with ``v_j`` the
    per-report variance from :func:`per_report_bit_variance`.  Bits with
    zero probability but non-zero per-report variance make the prediction
    infinite, exactly as in the lemma.
    """
    means = np.asarray(bit_means, dtype=np.float64)
    probs = schedule.probabilities
    if means.size != probs.size:
        raise ConfigurationError("bit_means and schedule lengths differ")
    if n_clients < 1 or b_send < 1:
        raise ConfigurationError("n_clients and b_send must be >= 1")
    total = 0.0
    for j, (mean, prob) in enumerate(zip(means, probs)):
        v = per_report_bit_variance(float(np.clip(mean, 0.0, 1.0)), epsilon)
        if v == 0.0:
            continue
        if prob == 0.0:
            return float("inf")
        total += 4.0**j * v / prob
    return total / (n_clients * b_send)


def predicted_nrmse(
    bit_means: np.ndarray,
    schedule: BitSamplingSchedule,
    n_clients: int,
    b_send: int = 1,
    epsilon: float | None = None,
) -> float:
    """Predicted NRMSE of the (unbiased) estimator: ``sqrt(V) / mean``."""
    means = np.asarray(bit_means, dtype=np.float64)
    true_mean = float(np.exp2(np.arange(means.size)) @ means)
    if true_mean <= 0:
        raise ConfigurationError("NRMSE undefined for a non-positive mean")
    variance = predicted_variance(bit_means, schedule, n_clients, b_send, epsilon)
    return math.sqrt(variance) / true_mean


def plan_cohort_size(
    target_nrmse: float,
    bit_means: np.ndarray,
    schedule: BitSamplingSchedule,
    b_send: int = 1,
    epsilon: float | None = None,
    max_clients: int = 100_000_000,
) -> int:
    """Smallest cohort whose *predicted* NRMSE meets ``target_nrmse``.

    The prediction scales as ``n**-1/2``, so the answer is closed-form:
    ``n = V_1 / (target * mean)**2`` with ``V_1`` the single-client
    variance.  Raises if the target is unreachable within ``max_clients``
    (e.g., a bit with zero sampling probability but real mass).

    Examples
    --------
    >>> means = np.array([0.5, 0.5, 0.5, 0.5])
    >>> sched = BitSamplingSchedule.weighted(4, alpha=1.0)
    >>> n = plan_cohort_size(0.01, means, sched)
    >>> predicted_nrmse(means, sched, n) <= 0.01
    True
    >>> predicted_nrmse(means, sched, n - max(n // 50, 1)) > 0.01
    True
    """
    if target_nrmse <= 0:
        raise ConfigurationError(f"target_nrmse must be positive, got {target_nrmse}")
    means = np.asarray(bit_means, dtype=np.float64)
    true_mean = float(np.exp2(np.arange(means.size)) @ means)
    if true_mean <= 0:
        raise ConfigurationError("cannot plan for a non-positive mean")
    single_client_variance = predicted_variance(means, schedule, 1, b_send, epsilon)
    if not math.isfinite(single_client_variance):
        raise ConfigurationError(
            "target unreachable: a bit with real mass has zero sampling probability"
        )
    needed = math.ceil(single_client_variance / (target_nrmse * true_mean) ** 2)
    needed = max(needed, 1)
    if needed > max_clients:
        raise ConfigurationError(
            f"target NRMSE {target_nrmse} needs ~{needed} clients "
            f"(> max_clients={max_clients})"
        )
    return needed


def dithering_variance(width: float, n_clients: int, epsilon: float | None = None) -> float:
    """Estimate variance of subtractive dithering over a range of ``width``.

    Per client the unit-domain estimate ``b + h - 1/2`` has variance at most
    1/4 (exactly 1/6 + m(1-m)-ish terms; we use the 1/4 bound the comparison
    in Section 2 relies on); randomized response multiplies the bit's
    contribution by ``1/(2p-1)**2``.  After rescaling, variance carries the
    ``width**2`` factor that makes loose bounds expensive.
    """
    if width <= 0 or n_clients < 1:
        raise ConfigurationError("width must be positive and n_clients >= 1")
    unit_variance = 0.25
    if epsilon is not None:
        if epsilon <= 0:
            raise ConfigurationError(f"epsilon must be positive, got {epsilon}")
        p = math.exp(epsilon) / (1.0 + math.exp(epsilon))
        unit_variance = 0.25 / (2.0 * p - 1.0) ** 2 + 1.0 / 12.0
    return width**2 * unit_variance / n_clients
