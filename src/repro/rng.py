"""Deterministic random-number plumbing.

Every stochastic entry point in this library accepts either a
:class:`numpy.random.Generator`, an integer seed, or ``None``.  This module
centralises the conversion (:func:`ensure_rng`) and the derivation of
statistically independent child streams (:func:`spawn`), so that experiment
sweeps are exactly reproducible: the harness spawns one child generator per
repetition and per method, and no component ever consults global numpy state.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

__all__ = ["RngLike", "ensure_rng", "spawn", "child_seeds"]

# Anything accepted where randomness is needed.
RngLike = "np.random.Generator | int | np.random.SeedSequence | None"


def ensure_rng(rng: np.random.Generator | int | np.random.SeedSequence | None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``rng``.

    ``None`` yields a fresh, OS-entropy-seeded generator; an ``int`` or
    :class:`~numpy.random.SeedSequence` seeds a new PCG64 generator; an
    existing generator is returned unchanged (not copied), so callers share
    and advance a single stream when they pass one in.
    """
    if rng is None:
        return np.random.default_rng()  # lint-rng: allow -- the sanctioned None -> fresh-entropy path
    if isinstance(rng, np.random.Generator):
        return rng
    if isinstance(rng, (int, np.integer, np.random.SeedSequence)):
        return np.random.default_rng(rng)
    raise TypeError(f"expected Generator, int, SeedSequence, or None; got {type(rng)!r}")


def spawn(rng: np.random.Generator | int | None, n: int) -> list[np.random.Generator]:
    """Derive ``n`` statistically independent child generators from ``rng``.

    Children are independent of each other *and* of the parent's future
    output, which makes them safe to hand to parallel repetitions of an
    experiment.
    """
    if n < 0:
        raise ValueError(f"cannot spawn a negative number of generators: {n}")
    parent = ensure_rng(rng)
    return list(parent.spawn(n))


def child_seeds(seed: int, n: int) -> Sequence[np.random.SeedSequence]:
    """Spawn ``n`` child :class:`~numpy.random.SeedSequence` objects of ``seed``.

    Useful when the seeds must be stored or shipped (e.g., in an experiment
    manifest) rather than used immediately.
    """
    if n < 0:
        raise ValueError(f"cannot spawn a negative number of seeds: {n}")
    return np.random.SeedSequence(seed).spawn(n)
