"""Command-line runner for the paper's figures and our ablations.

Usage::

    python -m repro.cli figure 1a            # full-size reproduction
    python -m repro.cli figure 3b --quick    # scaled-down smoke run
    python -m repro.cli figure 2a --json     # machine-readable series
    python -m repro.cli figure 1a --workers 4  # parallel trials, same output
    python -m repro.cli ablation poisoning
    python -m repro.cli trace 1a --quick     # traced federated round -> JSONL
    python -m repro.cli trace 3a --record out/run1 --sim-clock  # flight-recorder artifact
    python -m repro.cli report out/run1      # render the artifact as Markdown
    python -m repro.cli runs list out        # index recorded runs under a root
    python -m repro.cli runs compare out/run1 out/run2  # cross-run deltas
    python -m repro.cli runs check out/run1 out/run2    # regression gate (exit 1)
    python -m repro.cli list

Each figure/ablation command prints the figure's series as a markdown table
(the tabular equivalent of the paper's line plots), or as JSON with
``--json``.  The ``trace`` command runs one fully-instrumented federated
round sized like the named figure/ablation, prints the span tree and a
metrics summary, and writes spans plus a final metrics snapshot as JSON
lines; ``--record <dir>`` additionally captures a flight-recorder artifact
(event log + manifest) that ``report`` renders as Markdown or JSON (see
``docs/observability.md``).
"""

from __future__ import annotations

import argparse
import asyncio
import json
import math
import sys
import time
from pathlib import Path
from typing import Callable

import numpy as np

from repro.core import FixedPointEncoder
from repro.experiments import (
    alpha_sweep,
    b_send_sweep,
    caching_ablation,
    delta_sweep,
    distributed_dp_comparison,
    dropout_adjustment,
    figure_1a,
    figure_1b,
    figure_1c,
    figure_2a,
    figure_2b,
    figure_2c,
    figure_3a,
    figure_3b,
    figure_4a,
    figure_4b,
    figure_4c,
    gamma_sweep,
    poisoning_sweep,
    render_series_table,
    render_snapshot,
    schedule_sensitivity,
    series_to_json,
    snapshot_to_json,
    variance_decomposition,
)
from repro.exceptions import ConfigurationError, RoundFailedError
from repro.federated import (
    ClientBatch,
    ClientDevice,
    ClientFleet,
    DropoutModel,
    EmulationProfile,
    FaultSchedule,
    FederatedMeanQuery,
    NetworkModel,
    RetryPolicy,
    RoundServer,
    ServeConfig,
    fleet_values,
    ground_truth_mean,
)
from repro.analysis import per_report_bit_variance
from repro.metrics.execution import executor_for
from repro.observability import (
    ALERTS_FILENAME,
    FlightRecorder,
    HealthMonitor,
    InMemoryExporter,
    JsonLinesExporter,
    LiveMonitor,
    MetricsRegistry,
    PhaseProfiler,
    SimClock,
    Tracer,
    build_report,
    check_comparison,
    compare_runs,
    default_rules,
    format_span_tree,
    instrumented,
    load_run,
    render_compare_markdown,
    render_list_markdown,
    render_markdown,
    scan_runs,
    write_chrome_trace,
)
from repro.privacy import RandomizedResponse
from repro.privacy.accountant import BitMeter, PrivacyAccountant

__all__ = [
    "main",
    "FIGURES",
    "DIAGNOSTICS",
    "FIGURE_PANELS",
    "ABLATIONS",
    "run_traced_round",
    "run_report_command",
    "run_runs_command",
    "run_selfcheck_command",
    "run_serve_command",
    "run_fleet_command",
]

#: figure id -> (runner, quick-mode overrides, metric, x-axis label)
FIGURES: dict[str, tuple[Callable, dict, str, str]] = {
    "1a": (figure_1a, {"n_clients": 2_000, "n_reps": 10}, "nrmse", "mu"),
    "1b": (figure_1b, {"n_clients": 20_000, "n_reps": 10}, "nrmse", "mu"),
    "1c": (figure_1c, {"n_clients": 2_000, "n_reps": 10}, "nrmse", "bits"),
    "2a": (figure_2a, {"cohorts": (1_000, 5_000, 20_000), "n_reps": 10}, "nrmse", "n"),
    "2b": (figure_2b, {"cohorts": (1_000, 5_000, 20_000), "n_reps": 10}, "nrmse", "n"),
    "2c": (figure_2c, {"n_clients": 2_000, "n_reps": 10}, "nrmse", "bits"),
    "3a": (figure_3a, {"n_clients": 2_000, "n_reps": 10}, "rmse", "epsilon"),
    "3b": (figure_3b, {"n_clients": 2_000, "n_reps": 10}, "rmse", "epsilon"),
    "4a": (figure_4a, {"n_clients": 2_000, "n_reps": 10}, "rmse", "noise multiple"),
    "4c": (figure_4c, {"n_clients": 2_000, "n_reps": 10}, "rmse", "bits"),
}

#: Single-run diagnostic panels (no repetition sweep; rendered as a
#: snapshot table rather than a series).  Registered here so argparse
#: choices stay sorted and no caller needs to special-case panel ids.
DIAGNOSTICS: dict[str, Callable] = {
    "4b": figure_4b,
}

#: Every figure panel id, sweep and diagnostic alike, in sorted order.
FIGURE_PANELS: list[str] = sorted(set(FIGURES) | set(DIAGNOSTICS))

ABLATIONS: dict[str, tuple[Callable, dict, str, str]] = {
    "delta": (delta_sweep, {"n_clients": 2_000, "n_reps": 10}, "nrmse", "delta"),
    "gamma": (gamma_sweep, {"n_clients": 2_000, "n_reps": 10}, "nrmse", "gamma"),
    "alpha": (alpha_sweep, {"n_clients": 2_000, "n_reps": 10}, "nrmse", "alpha"),
    "caching": (caching_ablation, {"cohorts": (1_000, 5_000), "n_reps": 10}, "nrmse", "n"),
    "b-send": (b_send_sweep, {"n_clients": 2_000, "n_reps": 10}, "nrmse", "b_send"),
    "variance-decomposition": (
        variance_decomposition,
        {"cohorts": (10_000, 50_000), "n_reps": 10},
        "nrmse",
        "n",
    ),
    "poisoning": (poisoning_sweep, {"n_clients": 2_000, "n_reps": 10}, "nrmse", "fraction"),
    "distributed-dp": (
        distributed_dp_comparison,
        {"n_clients": 10_000, "n_reps": 10},
        "nrmse",
        "epsilon",
    ),
    "dropout": (dropout_adjustment, {"n_clients": 1_000, "n_reps": 5}, "nrmse", "dropout rate"),
    "schedule-sensitivity": (
        schedule_sensitivity,
        {"n_clients": 2_000, "n_reps": 10},
        "nrmse",
        "uniform mix fraction",
    ),
}

#: Targets whose traced round should apply local DP (the epsilon figures).
_LDP_TRACE_TARGETS = frozenset({"3a", "3b", "4a", "4c", "distributed-dp"})


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-figures",
        description="Reproduce figures from 'Private and Efficient Federated Numerical Aggregation'",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    workers_help = (
        "worker processes for trial execution (default: $REPRO_WORKERS or 1; "
        "results are bit-identical for any worker count)"
    )

    fig = sub.add_parser("figure", help="reproduce a paper figure panel")
    fig.add_argument("panel", choices=FIGURE_PANELS)
    fig.add_argument("--quick", action="store_true", help="scaled-down parameters")
    fig.add_argument("--json", action="store_true", help="emit the series as JSON")
    fig.add_argument("--workers", type=int, default=None, help=workers_help)

    abl = sub.add_parser("ablation", help="run a design-choice ablation")
    abl.add_argument("name", choices=sorted(ABLATIONS))
    abl.add_argument("--quick", action="store_true", help="scaled-down parameters")
    abl.add_argument("--json", action="store_true", help="emit the series as JSON")
    abl.add_argument("--workers", type=int, default=None, help=workers_help)

    trace = sub.add_parser(
        "trace",
        help="run one fully-traced federated round and export spans + metrics as JSONL",
    )
    trace.add_argument("target", choices=FIGURE_PANELS + sorted(ABLATIONS))
    trace.add_argument("--quick", action="store_true", help="smaller cohort")
    trace.add_argument(
        "--clients", type=int, default=None, metavar="N",
        help="population size; switches the round to the columnar client plane "
        "(one ClientBatch instead of N ClientDevice objects)",
    )
    trace.add_argument(
        "--chunk", type=int, default=None, metavar="SIZE",
        help="stream elicitation/collection in chunks of SIZE clients "
        "(default: $REPRO_BATCH_CHUNK or 65536); emits per-chunk "
        "client_plane.* spans",
    )
    trace.add_argument("--secure-agg", action="store_true", help="route through secure aggregation")
    trace.add_argument(
        "--shard-size", type=int, default=32, metavar="K",
        help="clients per secure-aggregation shard (with --secure-agg; shards "
        "run masking sessions independently and in parallel under "
        "$REPRO_WORKERS)",
    )
    trace.add_argument("--seed", type=int, default=0, help="round RNG seed")
    trace.add_argument(
        "--out", default=None, help="JSONL output path (default: trace_<target>.jsonl)"
    )
    trace.add_argument(
        "--max-retries", type=int, default=0,
        help="retries per failed round attempt (0 disables retry; failures abort)",
    )
    trace.add_argument(
        "--min-quorum", type=int, default=1,
        help="minimum surviving clients for a round attempt to count",
    )
    trace.add_argument(
        "--fault-schedule", default=None, metavar="SPEC",
        help=(
            "scripted fault events: a .json file, inline JSON, or a compact spec "
            "like '2:blackout;4-5:loss=0.6;6:deadline*0.5' (1-based round attempts)"
        ),
    )
    trace.add_argument(
        "--json", action="store_true",
        help="emit the run summary, spans, and metrics as JSON instead of text",
    )
    trace.add_argument(
        "--record", default=None, metavar="DIR",
        help=(
            "capture a flight-recorder artifact (events.jsonl + manifest.json) "
            "into DIR; render it later with `repro.cli report DIR`"
        ),
    )
    trace.add_argument(
        "--profile", action="store_true",
        help="enable the phase profiler: per-span CPU time, per-phase p50/p95/p99 "
        "(implied by --record)",
    )
    trace.add_argument(
        "--trace-malloc", action="store_true",
        help="also track per-span peak allocations via tracemalloc (implies --profile; "
        "ignored under --sim-clock)",
    )
    trace.add_argument(
        "--sim-clock", action="store_true",
        help="time spans with a deterministic simulated clock so same-seed runs "
        "produce byte-identical traces, artifacts, and reports",
    )
    trace.add_argument(
        "--watch", action="store_true",
        help="render live per-round progress (throughput, ETA, active alerts) "
        "to stderr; stdout output is unchanged",
    )

    serve = sub.add_parser(
        "serve",
        help="run an asyncio round server: one federated round over real "
        "wire-protocol TCP sockets (pair with `repro.cli fleet`)",
    )
    serve.add_argument("--clients", type=int, required=True, metavar="N",
                       help="planned cohort size (wire client ids 0..N-1)")
    serve.add_argument("--bits", type=int, default=10, help="fixed-point bit depth")
    serve.add_argument(
        "--epsilon", type=float, default=None,
        help="client-side randomized response epsilon (default: no LDP)",
    )
    serve.add_argument("--seed", type=int, default=0, help="server RNG seed (bit assignment)")
    serve.add_argument(
        "--deadline-s", type=float, default=30.0,
        help="wall-clock report-collection deadline per attempt (seconds)",
    )
    serve.add_argument(
        "--registration-timeout-s", type=float, default=30.0,
        help="how long to wait for the full fleet to register",
    )
    serve.add_argument(
        "--min-quorum", type=int, default=1,
        help="minimum accepted reports for an attempt to count",
    )
    serve.add_argument(
        "--max-retries", type=int, default=0,
        help="retries per failed attempt (simulated backoff; 0 disables)",
    )
    serve.add_argument("--host", default="127.0.0.1", help="bind address")
    serve.add_argument(
        "--port", type=int, default=0,
        help="TCP port (default 0: ephemeral; see --port-file)",
    )
    serve.add_argument(
        "--port-file", default=None, metavar="PATH",
        help="write the bound port to PATH once listening (ephemeral-port rendezvous)",
    )
    serve.add_argument(
        "--record", default=None, metavar="DIR",
        help="capture a flight-recorder artifact (events.jsonl + manifest.json) into DIR",
    )
    serve.add_argument(
        "--out", default=None, metavar="PATH",
        help="also write spans + metrics snapshot as JSONL to PATH",
    )
    serve.add_argument(
        "--sim-clock", action="store_true",
        help="time spans with a deterministic SimClock instead of wall clocks "
        "(byte-identical artifacts across same-seed runs)",
    )
    serve.add_argument("--json", action="store_true", help="emit the result as JSON")

    fleet = sub.add_parser(
        "fleet",
        help="run a simulated client fleet against a round server "
        "(deterministic values; optional network emulation)",
    )
    fleet.add_argument("--clients", type=int, required=True, metavar="N",
                       help="number of simulated devices (wire ids 0..N-1)")
    fleet.add_argument("--host", default="127.0.0.1", help="server address")
    fleet.add_argument("--port", type=int, default=None, help="server port")
    fleet.add_argument(
        "--port-file", default=None, metavar="PATH",
        help="poll PATH for the server's port (written by `serve --port-file`)",
    )
    fleet.add_argument(
        "--seed", type=int, default=0,
        help="fleet seed: drives both the value population and per-client RNG streams",
    )
    fleet.add_argument(
        "--emulation", default=None, metavar="SPEC",
        help="network emulation profile, e.g. 'loss=0.2,latency=45,sigma=0.6,scale=0.001' "
        "(loss rate, lognormal median/shape in simulated seconds, real-time scale)",
    )
    fleet.add_argument(
        "--rendezvous-timeout", type=float, default=10.0, metavar="S",
        help="seconds to wait for --port-file to appear before giving up "
        "(exit code 2; default 10)",
    )
    fleet.add_argument("--json", action="store_true", help="emit the result as JSON")

    report = sub.add_parser(
        "report",
        help="render a recorded run (a --record artifact directory) as Markdown or JSON",
    )
    report.add_argument("run_dir", help="artifact directory written by `trace --record`")
    report.add_argument(
        "--json", action="store_true", help="emit the report as JSON instead of Markdown"
    )
    report.add_argument(
        "--chrome-trace", default=None, metavar="PATH",
        help="also export the span stream (remote fleet spans on their own "
        "tracks) as Chrome trace-event JSON to PATH (Perfetto / chrome://tracing)",
    )

    runs = sub.add_parser(
        "runs",
        help="query the run registry: list recorded artifacts, compare two runs, "
        "or gate a candidate run against a baseline",
    )
    runs_sub = runs.add_subparsers(dest="runs_command", required=True)
    runs_list = runs_sub.add_parser(
        "list", help="index every recorded artifact directory under a root"
    )
    runs_list.add_argument("root", help="directory scanned recursively for manifest.json")
    runs_list.add_argument(
        "--json", action="store_true", help="emit the index as JSON instead of Markdown"
    )
    runs_compare = runs_sub.add_parser(
        "compare",
        help="cross-run deltas (phase percentiles, counters, estimate error, alerts)",
    )
    runs_compare.add_argument("baseline", help="baseline artifact directory")
    runs_compare.add_argument("candidate", help="candidate artifact directory")
    runs_compare.add_argument(
        "--json", action="store_true", help="emit the comparison as JSON instead of Markdown"
    )
    runs_check = runs_sub.add_parser(
        "check",
        help="gate a candidate run against a baseline (exit 1 on regression), "
        "in the style of bench-check",
    )
    runs_check.add_argument("baseline", help="baseline artifact directory")
    runs_check.add_argument("candidate", help="candidate artifact directory")
    runs_check.add_argument(
        "--tolerance", type=float, default=1.25,
        help="ratio past which a phase-p95 or estimate-error regression fails (default 1.25)",
    )

    selfcheck = sub.add_parser(
        "selfcheck",
        help="run the verification suite: runtime invariants + Monte-Carlo oracles",
    )
    selfcheck.add_argument(
        "--deep",
        action="store_true",
        help="widen the sweep: LDP/local/b_send variants, every baseline, more reps",
    )
    selfcheck.add_argument("--json", action="store_true", help="emit the report as JSON")
    selfcheck.add_argument("--seed", type=int, default=0, help="oracle suite seed")
    selfcheck.add_argument("--workers", type=int, default=None, help=workers_help)
    selfcheck.add_argument(
        "--trace-out",
        default=None,
        metavar="PATH",
        help="also write selfcheck spans + metrics snapshot as JSONL",
    )

    sub.add_parser("list", help="list available figures and ablations")
    return parser


def _lemma31_analysis(estimate, truth: float, encoder, epsilon: float | None) -> dict:
    """Observed error vs. the Lemma 3.1 prediction at the *realized* counts.

    The lemma's variance ``sum_j 4^j v_j / (n p_j)`` is evaluated with each
    bit's realized report count ``c_j`` in place of its expectation
    ``n p_j`` (dropout and loss make the two differ), then mapped to the
    real domain through the encoder's linear decode (``std * scale``).  The
    reported bound is two predicted standard deviations.
    """
    variance_encoded = 0.0
    unbounded = False
    for j, (mean, count) in enumerate(zip(estimate.bit_means, estimate.counts)):
        v = per_report_bit_variance(float(np.clip(mean, 0.0, 1.0)), epsilon)
        if v == 0.0:
            continue
        if count <= 0:
            unbounded = True
            continue
        variance_encoded += (4.0**j) * v / float(count)
    predicted_std = (
        float("inf") if unbounded else math.sqrt(variance_encoded) * encoder.scale
    )
    observed = abs(float(estimate.value) - float(truth))
    bound = 2.0 * predicted_std
    return {
        "truth": float(truth),
        "observed_error": observed,
        "predicted_std": predicted_std,
        "bound_2sigma": bound,
        "within_bound": bool(observed <= bound),
        "epsilon": epsilon,
    }


def run_traced_round(
    target: str,
    quick: bool = False,
    clients: int | None = None,
    chunk: int | None = None,
    secure_agg: bool = False,
    shard_size: int = 32,
    seed: int = 0,
    out_path: str | None = None,
    stream=None,
    max_retries: int = 0,
    min_quorum: int = 1,
    fault_schedule: str | None = None,
    record_dir: str | None = None,
    profile: bool = False,
    trace_malloc: bool = False,
    sim_clock: bool = False,
    as_json: bool = False,
    watch: bool = False,
    watch_stream=None,
) -> dict:
    """Run one instrumented :class:`FederatedMeanQuery` round pipeline.

    The ``target`` (a figure panel or ablation name) sizes the run; every
    target exercises the same full pipeline -- cohort selection, bit
    assignment, lossy network transmission, optional secure aggregation and
    local DP, and reconstruction.  ``max_retries``/``min_quorum``/
    ``fault_schedule`` configure round-failure recovery (a chaos run: see
    ``docs/operations.md``).

    ``clients`` overrides the target's population size and builds the
    population as one columnar :class:`ClientBatch` (struct-of-arrays)
    instead of ``ClientDevice`` objects, exercising the vectorized client
    plane; ``chunk`` bounds the streaming chunk size so elicitation and
    report collection emit per-chunk ``client_plane.*`` spans (see
    ``docs/performance.md``).

    ``record_dir`` captures a flight-recorder artifact (event log +
    manifest, including the privacy ledger and bit-meter totals) for
    ``repro.cli report``; recording implies the phase profiler.  With
    ``sim_clock`` every recorded timing comes from a deterministic
    :class:`SimClock`, so two same-seed runs produce byte-identical
    artifacts (``trace_malloc`` is ignored in that mode -- allocation peaks
    are not deterministic, but ``alerts.jsonl`` is: alert times derive from
    span times).  Every run evaluates the default SLO health rules per
    round; recorded runs persist the transitions to ``alerts.jsonl`` and the
    summary into the manifest.  ``watch`` renders live per-round progress
    and active alerts to ``watch_stream`` (stderr by default) without
    touching stdout.  Returns a summary dict (estimate, truth, paths,
    analysis, reconciliation).
    """
    stream = stream if stream is not None else sys.stdout
    columnar = clients is not None
    n_clients = int(clients) if columnar else (2_000 if quick else 20_000)
    if columnar and n_clients < 2:
        raise ValueError(f"--clients must be >= 2, got {n_clients}")
    encoder = FixedPointEncoder.for_integers(10)
    epsilon = 2.0 if target in _LDP_TRACE_TARGETS else None
    perturbation = RandomizedResponse(epsilon=epsilon) if epsilon is not None else None

    rng = np.random.default_rng(seed)
    if columnar:
        # One struct-of-arrays batch: same value distribution as the object
        # path, drawn column-wise (sizes then one flat value draw).
        sizes = rng.integers(1, 4, n_clients)
        flat = np.clip(rng.normal(600.0, 100.0, int(sizes.sum())), 0.0, None)
        offsets = np.zeros(n_clients + 1, dtype=np.int64)
        np.cumsum(sizes, out=offsets[1:])
        population = ClientBatch(values=flat, offsets=offsets)
        truth = ground_truth_mean(population)
    else:
        population = [
            ClientDevice(i, np.clip(rng.normal(600.0, 100.0, rng.integers(1, 4)), 0.0, None))
            for i in range(n_clients)
        ]
        truth = ground_truth_mean([c.values for c in population])

    recording = record_dir is not None
    accountant = PrivacyAccountant() if recording else None
    meter = BitMeter(max_bits_per_value=1) if recording else None
    query = FederatedMeanQuery(
        encoder,
        mode="adaptive",
        perturbation=perturbation,
        dropout=DropoutModel(rate=0.05),
        network=NetworkModel(loss_rate=0.05, deadline_s=600.0),
        secure_aggregation=secure_agg,
        shard_size=shard_size,
        min_reports_per_bit=2,
        min_quorum=min_quorum,
        # Recorded runs meter every disclosure at the paper's 1-bit cap, which
        # requires the two adaptive rounds' cohorts to stay disjoint -- a
        # redrawn retry cohort could overlap the other round's, so recording
        # retries the same cohort instead (failed attempts elicit nothing).
        retry=RetryPolicy(max_attempts=max_retries + 1, redraw_cohort=not recording)
        if max_retries > 0
        else None,
        faults=FaultSchedule.load(fault_schedule) if fault_schedule else None,
        meter=meter,
        accountant=accountant,
        chunk_clients=chunk,
    )

    sim = SimClock(start=1.0, step=0.001) if sim_clock else None
    profiler = None
    if profile or trace_malloc or recording:
        profiler = PhaseProfiler(
            trace_malloc=trace_malloc and not sim_clock,
            cpu_clock=sim,
        )

    registry = MetricsRegistry()
    memory = InMemoryExporter()
    exporters: list = [memory]
    # The standalone JSONL trace stays the default; under --record the
    # artifact's event log subsumes it unless --out asks for both.
    path = None
    jsonl = None
    if out_path is not None or not recording:
        path = out_path or f"trace_{target}.jsonl"
        jsonl = JsonLinesExporter(path)
        exporters.append(jsonl)
    recorder = None
    if recording:
        recorder = FlightRecorder(
            record_dir,
            config={
                "target": target,
                "quick": quick,
                "secure_agg": secure_agg,
                "shard_size": shard_size,
                "n_clients": n_clients,
                "columnar": columnar,
                "chunk": chunk,
                "n_bits": encoder.n_bits,
                "epsilon": epsilon,
                "max_retries": max_retries,
                "min_quorum": min_quorum,
                "sim_clock": sim_clock,
            },
            seed=seed,
            metrics=registry,
        )
        exporters.append(recorder)
    # SLO watchdog: every round span is one health sample; recorded runs
    # persist fire/resolve transitions next to the artifact.  The adaptive
    # pipeline plans 2 rounds, each spending the perturbation's epsilon.
    health = HealthMonitor(
        rules=default_rules(
            epsilon_budget=2.0 * epsilon if epsilon is not None else None,
            planned_rounds=2,
        ),
        metrics=registry,
        sink=(recorder.directory / ALERTS_FILENAME) if recorder is not None else None,
    )
    exporters.append(health)
    live = None
    if watch:
        live = LiveMonitor(planned_rounds=2, health=health, stream=watch_stream)
        exporters.append(live)
    tracer = Tracer(exporters, profiler=profiler, clock=sim, wall_clock=sim)

    try:
        with instrumented(tracer, registry):
            estimate = query.run(population, rng=rng)
        snapshot = registry.snapshot()
        if jsonl is not None:
            jsonl.export_metrics(snapshot)
    except BaseException:
        if recorder is not None:
            recorder.close()
        raise
    finally:
        if jsonl is not None:
            jsonl.close()
        if profiler is not None:
            profiler.stop()

    analysis = _lemma31_analysis(estimate, truth, encoder, epsilon)
    health.observe_estimate(analysis)
    health.close()
    health_summary = health.summary()
    if live is not None:
        live.finish(estimate=float(estimate.value))
    if recorder is not None:
        recorder.finalize(
            estimate=estimate,
            metrics=snapshot,
            profiler=profiler,
            accountant=accountant,
            meter=meter,
            analysis=analysis,
            extra={"health": health_summary},
        )

    counters = snapshot["counters"]
    planned = counters.get("round_reports_planned_total", 0.0)
    delivered = counters.get("round_reports_delivered_total", 0.0)
    lost = counters.get("round_reports_lost_total", 0.0)
    # Report counters accumulate per *attempt* (failed attempts included),
    # so reconciliation sums the outcome's full attempt history.
    history = [pair for round_ in estimate.metadata["attempt_history"] for pair in round_]
    reconciled = (
        planned == delivered + lost
        and planned == sum(p for p, _ in history)
        and delivered == sum(s for _, s in history)
    )

    result = {
        "estimate": estimate,
        "truth": truth,
        "path": path,
        "snapshot": snapshot,
        "reconciled": reconciled,
        "n_spans": len(memory.records),
        "analysis": analysis,
        "health": health_summary,
        "record_dir": str(record_dir) if recording else None,
    }

    if as_json:
        payload = {
            "target": target,
            "seed": seed,
            "quick": quick,
            "clients": n_clients,
            "columnar": columnar,
            "chunk": chunk,
            "secure_agg": secure_agg,
            "shard_size": shard_size,
            "estimate": float(estimate.value),
            "truth": float(truth),
            "reconciled": reconciled,
            "n_spans": len(memory.records),
            "trace_path": path,
            "record_dir": result["record_dir"],
            "analysis": analysis,
            "health": health_summary,
            "recovery": {
                "round_attempts": estimate.metadata["round_attempts"],
                "degraded_rounds": estimate.metadata["degraded_rounds"],
                "backoff_s": estimate.metadata["backoff_s"],
            },
            "spans": [record.to_dict() for record in memory.records],
            "metrics": snapshot,
        }
        print(json.dumps(payload, indent=2, default=str), file=stream)
        return result

    print(f"# Traced federated round ({target})", file=stream)
    print(file=stream)
    if columnar:
        print(
            f"population: columnar ClientBatch, n={n_clients}"
            + (f", chunk={chunk}" if chunk is not None else ""),
            file=stream,
        )
        print(file=stream)
    print(format_span_tree(memory.records), file=stream)
    print(file=stream)
    print("## Metrics", file=stream)
    print(json.dumps(snapshot, indent=2, default=str), file=stream)
    print(file=stream)
    print(f"estimate: {estimate.value:.4f}  (ground truth {truth:.4f})", file=stream)
    print(
        f"lemma 3.1: observed error {analysis['observed_error']:.4f} vs 2-sigma bound "
        f"{analysis['bound_2sigma']:.4f} (within: {analysis['within_bound']})",
        file=stream,
    )
    print(
        f"reports: planned={planned:.0f} delivered={delivered:.0f} lost={lost:.0f}  "
        f"reconciled with RoundOutcome: {reconciled}",
        file=stream,
    )
    attempts = estimate.metadata["round_attempts"]
    if sum(attempts) > len(attempts) or any(estimate.metadata["degraded_rounds"]):
        print(
            f"recovery: attempts={attempts} degraded={estimate.metadata['degraded_rounds']} "
            f"backoff_s={estimate.metadata['backoff_s']}",
            file=stream,
        )
    if accountant is not None:
        print(f"privacy: epsilon spent = {accountant.spent_epsilon:.4f}", file=stream)
    active = health_summary["active"]
    print(
        f"health: {health_summary['fired_total']} alert(s) fired, "
        f"{health_summary['resolved_total']} resolved"
        + (
            "; ACTIVE: " + ", ".join(f"{a['rule']}({a['severity']})" for a in active)
            if active
            else ""
        ),
        file=stream,
    )
    if profiler is not None:
        print(file=stream)
        print("## Phases (p50/p95/p99 ms)", file=stream)
        for phase in profiler.phases()[:12]:
            print(
                f"{phase.name}: n={phase.count} total={phase.total_s * 1e3:.3f}ms "
                f"cpu={phase.cpu_total_s * 1e3:.3f}ms p50={phase.p50_s * 1e3:.3f} "
                f"p95={phase.p95_s * 1e3:.3f} p99={phase.p99_s * 1e3:.3f}",
                file=stream,
            )
    if path is not None:
        print(
            f"trace written to {path} ({len(memory.records)} spans + metrics snapshot)",
            file=stream,
        )
    if recorder is not None:
        print(f"flight-recorder artifact written to {record_dir}", file=stream)
    return result


def run_report_command(
    run_dir: str,
    as_json: bool = False,
    chrome_trace: str | None = None,
    stream=None,
    error_stream=None,
) -> int:
    """Render a recorded run directory as Markdown (or JSON with ``--json``).

    ``--chrome-trace PATH`` additionally lays the artifact's span stream out
    as Chrome trace-event JSON -- server phases on one track, each telemetry
    client on its own -- for Perfetto / ``chrome://tracing``.

    A missing or corrupt ``manifest.json`` is an operator error, not a bug:
    it gets one line on stderr and exit code 2, never a traceback.
    """
    stream = stream if stream is not None else sys.stdout
    error_stream = error_stream if error_stream is not None else sys.stderr
    try:
        artifact = load_run(run_dir)
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=error_stream)
        return 2
    except BrokenPipeError:
        raise
    except (json.JSONDecodeError, OSError) as exc:
        print(
            f"error: cannot read manifest in {run_dir}: {exc}",
            file=error_stream,
        )
        return 2
    report = build_report(artifact)
    if as_json:
        print(json.dumps(report, indent=2, default=str), file=stream)
    else:
        print(render_markdown(report), file=stream)
    if chrome_trace is not None:
        label = str(artifact.manifest.get("label") or artifact.directory.name)
        document = write_chrome_trace(chrome_trace, artifact.spans(), label=label)
        # Keep --json stdout parseable: the notice goes to stderr there.
        notice_stream = error_stream if as_json else stream
        print(
            f"chrome trace written to {chrome_trace} "
            f"({len(document['traceEvents'])} events, "
            f"{document['otherData']['clients']} client track(s))",
            file=notice_stream,
        )
    return 0


def run_runs_command(args, stream=None, error_stream=None) -> int:
    """Dispatch ``runs list|compare|check`` against the run registry."""
    stream = stream if stream is not None else sys.stdout
    error_stream = error_stream if error_stream is not None else sys.stderr
    try:
        if args.runs_command == "list":
            entries = scan_runs(args.root)
            if args.json:
                print(
                    json.dumps([e.to_dict() for e in entries], indent=2, default=str),
                    file=stream,
                )
            else:
                print(render_list_markdown(entries, args.root), file=stream)
            return 0
        comparison = compare_runs(args.baseline, args.candidate)
        if args.runs_command == "compare":
            if args.json:
                print(json.dumps(comparison, indent=2, default=str), file=stream)
            else:
                print(render_compare_markdown(comparison), file=stream)
            return 0
        ok, messages = check_comparison(comparison, tolerance=args.tolerance)
        for message in messages:
            print(message, file=stream)
        return 0 if ok else 1
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=error_stream)
        return 2
    except BrokenPipeError:
        raise
    except (json.JSONDecodeError, OSError) as exc:
        print(f"error: cannot read artifact: {exc}", file=error_stream)
        return 2


def run_selfcheck_command(
    deep: bool = False,
    seed: int = 0,
    workers: int | None = None,
    as_json: bool = False,
    trace_out: str | None = None,
    stream=None,
) -> int:
    """Run the verification suite with spans + metrics; 0 iff everything holds.

    The executor (``--workers`` / ``REPRO_WORKERS``) feeds the executor-twin
    oracle, so running this command under different worker counts is the
    deployment-side check of the bit-identity contract.
    """
    from repro.verification import run_selfcheck

    stream = stream if stream is not None else sys.stdout
    executor = executor_for(workers)
    memory = InMemoryExporter()
    exporters = [memory]
    jsonl = None
    if trace_out:
        jsonl = JsonLinesExporter(trace_out)
        exporters.append(jsonl)
    registry = MetricsRegistry()
    try:
        with instrumented(Tracer(exporters), registry):
            report = run_selfcheck(deep=deep, seed=seed, executor=executor)
        snapshot = registry.snapshot()
        if jsonl is not None:
            jsonl.export_metrics(snapshot)
    finally:
        if jsonl is not None:
            jsonl.close()

    if as_json:
        payload = report.to_dict()
        payload["metrics"] = snapshot["counters"]
        print(json.dumps(payload, indent=2, default=str), file=stream)
    else:
        print(f"# Selfcheck ({'deep' if deep else 'quick'}, seed={seed})", file=stream)
        print(file=stream)
        print(report.render(), file=stream)
        counters = snapshot["counters"]
        print(
            f"spans: {len(memory.records)}  checks: "
            f"{counters.get('selfcheck_checks_total', 0):.0f}  failures: "
            f"{counters.get('selfcheck_failures_total', 0):.0f}"
            + (f"  trace written to {trace_out}" if trace_out else ""),
            file=stream,
        )
    return 0 if report.passed else 1


def run_serve_command(
    clients: int,
    bits: int = 10,
    epsilon: float | None = None,
    seed: int = 0,
    deadline_s: float = 30.0,
    registration_timeout_s: float = 30.0,
    min_quorum: int = 1,
    max_retries: int = 0,
    host: str = "127.0.0.1",
    port: int = 0,
    port_file: str | None = None,
    record_dir: str | None = None,
    out_path: str | None = None,
    sim_clock: bool = False,
    as_json: bool = False,
    stream=None,
    error_stream=None,
) -> int:
    """Serve one federated round over TCP to a wire-protocol client fleet.

    Binds (writing the bound port to ``port_file`` for an ephemeral-port
    rendezvous with ``repro.cli fleet``), waits for registration, and drives
    the announce/collect/reconstruct state machine under full
    instrumentation: ``--out`` exports the ``serve.*``/``uplink.*`` spans and
    a metrics snapshot as JSONL, ``--record`` captures a flight-recorder
    artifact in exactly the form in-process traced rounds produce (rendered
    by ``repro.cli report``).  A round that exhausts its retry budget prints
    the failure and exits 1.
    """
    stream = stream if stream is not None else sys.stdout
    error_stream = error_stream if error_stream is not None else sys.stderr
    config = ServeConfig(
        n_clients=clients,
        n_bits=bits,
        epsilon=epsilon,
        seed=seed,
        deadline_s=deadline_s,
        registration_timeout_s=registration_timeout_s,
        min_quorum=min_quorum,
        retry=RetryPolicy(max_attempts=max_retries + 1, redraw_cohort=False)
        if max_retries > 0
        else None,
        host=host,
        port=port,
    )

    registry = MetricsRegistry()
    memory = InMemoryExporter()
    exporters: list = [memory]
    jsonl = JsonLinesExporter(out_path) if out_path is not None else None
    if jsonl is not None:
        exporters.append(jsonl)
    recorder = None
    if record_dir is not None:
        recorder = FlightRecorder(
            record_dir,
            config={"command": "serve", "sim_clock": sim_clock, **config.to_manifest()},
            seed=seed,
            metrics=registry,
            round_span="serve.round",
        )
        exporters.append(recorder)
    # Served rounds get the same SLO watchdog traced in-process rounds have;
    # the straggler-skew rule reads the uplink-latency attributes the server
    # stamps on each serve.round span.  Recorded runs persist transitions.
    health = HealthMonitor(
        metrics=registry,
        sink=(recorder.directory / ALERTS_FILENAME) if recorder is not None else None,
        round_span="serve.round",
    )
    exporters.append(health)
    sim = SimClock(start=1.0, step=0.001) if sim_clock else None

    async def _serve():
        server = RoundServer(config)
        bound_port = await server.start()
        if port_file is not None:
            Path(port_file).write_text(f"{bound_port}\n")
        try:
            result = await server.serve_round()
        finally:
            await server.close()
        return bound_port, result

    try:
        with instrumented(Tracer(exporters, clock=sim, wall_clock=sim), registry):
            bound_port, result = asyncio.run(_serve())
        snapshot = registry.snapshot()
        if jsonl is not None:
            jsonl.export_metrics(snapshot)
    except RoundFailedError as exc:
        if recorder is not None:
            recorder.close()
        print(f"round failed: {exc}", file=error_stream)
        return 1
    except BaseException:
        if recorder is not None:
            recorder.close()
        raise
    finally:
        if jsonl is not None:
            jsonl.close()
        health.close()

    if recorder is not None:
        recorder.finalize(
            estimate=result.estimate,
            metrics=snapshot,
            extra={
                "serve": {
                    "port": bound_port,
                    "registered_clients": result.registered_clients,
                    "surviving_clients": result.surviving_clients,
                    "attempts": result.attempts,
                    "wire_rejects": result.wire_rejects,
                    "late_reports": result.late_reports,
                    "telemetry_clients": result.telemetry_clients,
                    "remote_spans": result.remote_spans,
                },
                "health": health.summary(),
            },
        )

    counters = snapshot["counters"]
    if as_json:
        payload = {
            "command": "serve",
            "estimate": float(result.estimate.value),
            "port": bound_port,
            "planned_clients": result.planned_clients,
            "registered_clients": result.registered_clients,
            "surviving_clients": result.surviving_clients,
            "attempts": result.attempts,
            "degraded": result.degraded,
            "backoff_s": result.backoff_s,
            "wire_rejects": result.wire_rejects,
            "late_reports": result.late_reports,
            "telemetry_clients": result.telemetry_clients,
            "remote_spans": result.remote_spans,
            "collect_duration_s": result.duration_s,
            "record_dir": record_dir,
            "trace_path": out_path,
            "metrics": snapshot,
        }
        print(json.dumps(payload, indent=2, default=str), file=stream)
        return 0

    print(f"# Served federated round (port {bound_port})", file=stream)
    print(file=stream)
    print(
        f"estimate: {result.estimate.value:.4f}  "
        f"({result.surviving_clients}/{result.planned_clients} clients, "
        f"{result.registered_clients} registered, attempt {result.attempts})",
        file=stream,
    )
    print(
        f"uplinks: accepted={counters.get('serve_reports_total', 0):.0f} "
        f"rejected={result.wire_rejects} late={result.late_reports}  "
        f"collect={result.duration_s:.3f}s",
        file=stream,
    )
    if result.telemetry_clients:
        print(
            f"telemetry: {result.telemetry_clients} client(s) uplinked "
            f"{result.remote_spans} span(s)",
            file=stream,
        )
    if result.degraded or result.backoff_s > 0:
        print(
            f"recovery: degraded={result.degraded} backoff_s={result.backoff_s}",
            file=stream,
        )
    if out_path is not None:
        print(f"trace written to {out_path}", file=stream)
    if record_dir is not None:
        print(f"flight-recorder artifact written to {record_dir}", file=stream)
    return 0


def _resolve_port(
    port: int | None, port_file: str | None, timeout_s: float = 10.0
) -> int:
    """The fleet's port rendezvous: an explicit port, or poll the port file."""
    if port is not None:
        return int(port)
    if port_file is None:
        raise ConfigurationError("fleet needs --port or --port-file")
    deadline = time.monotonic() + timeout_s
    path = Path(port_file)
    while True:
        try:
            text = path.read_text().strip()
            if text:
                return int(text)
        except (FileNotFoundError, ValueError):
            pass
        if time.monotonic() >= deadline:
            raise ConfigurationError(
                f"no port appeared in {port_file} within {timeout_s:g}s "
                "(is the server running with --port-file?)"
            )
        time.sleep(0.05)


def run_fleet_command(
    clients: int,
    host: str = "127.0.0.1",
    port: int | None = None,
    port_file: str | None = None,
    seed: int = 0,
    emulation: str | None = None,
    rendezvous_timeout_s: float = 10.0,
    as_json: bool = False,
    stream=None,
    error_stream=None,
) -> int:
    """Run a simulated device fleet against a round server.

    Client values come from :func:`repro.federated.fleet_values` (clipped
    ``Normal(600, 100)`` under ``seed``), so any twin that knows the seed can
    recompute exactly what the fleet reported on.  A port file that never
    appears within ``rendezvous_timeout_s`` is one line on stderr and exit
    code 2 (the fleet never hangs on a server that failed to start).  Exits
    1 if the server aborted the round or never announced a result.
    """
    stream = stream if stream is not None else sys.stdout
    error_stream = error_stream if error_stream is not None else sys.stderr
    try:
        resolved = _resolve_port(port, port_file, timeout_s=rendezvous_timeout_s)
    except ConfigurationError as exc:
        print(f"error: {exc}", file=error_stream)
        return 2
    profile = EmulationProfile.parse(emulation) if emulation else None
    fleet = ClientFleet(fleet_values(clients, seed), seed=seed, profile=profile)
    result = asyncio.run(fleet.run(host, resolved))
    ok = not result.aborted and result.estimate is not None
    if as_json:
        payload = {
            "command": "fleet",
            "clients": result.n_clients,
            "uplinks_sent": result.uplinks_sent,
            "uplinks_dropped": result.uplinks_dropped,
            "estimate": result.estimate,
            "aborted": result.aborted,
            "clients_with_result": len(result.results),
        }
        print(json.dumps(payload, indent=2), file=stream)
        return 0 if ok else 1
    print(
        f"fleet: {result.n_clients} clients, {result.uplinks_sent} uplinks sent, "
        f"{result.uplinks_dropped} dropped",
        file=stream,
    )
    if result.aborted:
        print("round aborted by the server", file=error_stream)
    elif result.estimate is None:
        print("no result announced before the fleet disconnected", file=error_stream)
    else:
        print(
            f"estimate: {result.estimate:.4f} "
            f"(announced to {len(result.results)} clients)",
            file=stream,
        )
    return 0 if ok else 1


def main(argv: list[str] | None = None) -> int:
    try:
        return _dispatch(argv)
    except BrokenPipeError:
        # Output piped into a pager/head that closed early -- not an error.
        return 0


def _dispatch(argv: list[str] | None) -> int:
    args = _build_parser().parse_args(argv)

    if args.command == "list":
        print("figures:  " + " ".join(FIGURE_PANELS))
        print("ablations: " + " ".join(sorted(ABLATIONS)))
        return 0

    if args.command == "selfcheck":
        return run_selfcheck_command(
            deep=args.deep,
            seed=args.seed,
            workers=args.workers,
            as_json=args.json,
            trace_out=args.trace_out,
        )

    if args.command == "trace":
        result = run_traced_round(
            args.target,
            quick=args.quick,
            clients=args.clients,
            chunk=args.chunk,
            secure_agg=args.secure_agg,
            shard_size=args.shard_size,
            seed=args.seed,
            out_path=args.out,
            max_retries=args.max_retries,
            min_quorum=args.min_quorum,
            fault_schedule=args.fault_schedule,
            record_dir=args.record,
            profile=args.profile,
            trace_malloc=args.trace_malloc,
            sim_clock=args.sim_clock,
            as_json=args.json,
            watch=args.watch,
        )
        return 0 if result["reconciled"] else 1

    if args.command == "serve":
        return run_serve_command(
            clients=args.clients,
            bits=args.bits,
            epsilon=args.epsilon,
            seed=args.seed,
            deadline_s=args.deadline_s,
            registration_timeout_s=args.registration_timeout_s,
            min_quorum=args.min_quorum,
            max_retries=args.max_retries,
            host=args.host,
            port=args.port,
            port_file=args.port_file,
            record_dir=args.record,
            out_path=args.out,
            sim_clock=args.sim_clock,
            as_json=args.json,
        )

    if args.command == "fleet":
        return run_fleet_command(
            clients=args.clients,
            host=args.host,
            port=args.port,
            port_file=args.port_file,
            seed=args.seed,
            emulation=args.emulation,
            rendezvous_timeout_s=args.rendezvous_timeout,
            as_json=args.json,
        )

    if args.command == "report":
        return run_report_command(
            args.run_dir, as_json=args.json, chrome_trace=args.chrome_trace
        )

    if args.command == "runs":
        return run_runs_command(args)

    executor = executor_for(args.workers)

    if args.command == "figure":
        if args.panel in DIAGNOSTICS:
            # Diagnostic panels are a single run (no repetition sweep to
            # distribute) rendered as a snapshot table.
            snapshot = DIAGNOSTICS[args.panel]()
            print(snapshot_to_json(snapshot) if args.json else render_snapshot(snapshot))
            return 0
        runner, quick_kwargs, metric, x_name = FIGURES[args.panel]
        results = runner(**(quick_kwargs if args.quick else {}), executor=executor)
        title = f"Figure {args.panel}"
        if args.json:
            print(series_to_json(title, results, metric=metric, x_name=x_name))
        else:
            print(render_series_table(title, results, metric=metric, x_name=x_name))
        return 0

    runner, quick_kwargs, metric, x_name = ABLATIONS[args.name]
    results = runner(**(quick_kwargs if args.quick else {}), executor=executor)
    title = f"Ablation: {args.name}"
    if args.json:
        print(series_to_json(title, results, metric=metric, x_name=x_name))
    else:
        print(render_series_table(title, results, metric=metric, x_name=x_name))
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
