"""Command-line runner for the paper's figures and our ablations.

Usage::

    python -m repro.cli figure 1a            # full-size reproduction
    python -m repro.cli figure 3b --quick    # scaled-down smoke run
    python -m repro.cli ablation poisoning
    python -m repro.cli list

Each command prints the figure's series as a markdown table (the tabular
equivalent of the paper's line plots).
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable

from repro.experiments import (
    alpha_sweep,
    b_send_sweep,
    caching_ablation,
    delta_sweep,
    distributed_dp_comparison,
    dropout_adjustment,
    figure_1a,
    figure_1b,
    figure_1c,
    figure_2a,
    figure_2b,
    figure_2c,
    figure_3a,
    figure_3b,
    figure_4a,
    figure_4b,
    figure_4c,
    gamma_sweep,
    poisoning_sweep,
    render_series_table,
    render_snapshot,
    schedule_sensitivity,
    variance_decomposition,
)

__all__ = ["main", "FIGURES", "ABLATIONS"]

#: figure id -> (runner, quick-mode overrides, metric, x-axis label)
FIGURES: dict[str, tuple[Callable, dict, str, str]] = {
    "1a": (figure_1a, {"n_clients": 2_000, "n_reps": 10}, "nrmse", "mu"),
    "1b": (figure_1b, {"n_clients": 20_000, "n_reps": 10}, "nrmse", "mu"),
    "1c": (figure_1c, {"n_clients": 2_000, "n_reps": 10}, "nrmse", "bits"),
    "2a": (figure_2a, {"cohorts": (1_000, 5_000, 20_000), "n_reps": 10}, "nrmse", "n"),
    "2b": (figure_2b, {"cohorts": (1_000, 5_000, 20_000), "n_reps": 10}, "nrmse", "n"),
    "2c": (figure_2c, {"n_clients": 2_000, "n_reps": 10}, "nrmse", "bits"),
    "3a": (figure_3a, {"n_clients": 2_000, "n_reps": 10}, "rmse", "epsilon"),
    "3b": (figure_3b, {"n_clients": 2_000, "n_reps": 10}, "rmse", "epsilon"),
    "4a": (figure_4a, {"n_clients": 2_000, "n_reps": 10}, "rmse", "noise multiple"),
    "4c": (figure_4c, {"n_clients": 2_000, "n_reps": 10}, "rmse", "bits"),
}

ABLATIONS: dict[str, tuple[Callable, dict, str, str]] = {
    "delta": (delta_sweep, {"n_clients": 2_000, "n_reps": 10}, "nrmse", "delta"),
    "gamma": (gamma_sweep, {"n_clients": 2_000, "n_reps": 10}, "nrmse", "gamma"),
    "alpha": (alpha_sweep, {"n_clients": 2_000, "n_reps": 10}, "nrmse", "alpha"),
    "caching": (caching_ablation, {"cohorts": (1_000, 5_000), "n_reps": 10}, "nrmse", "n"),
    "b-send": (b_send_sweep, {"n_clients": 2_000, "n_reps": 10}, "nrmse", "b_send"),
    "variance-decomposition": (
        variance_decomposition,
        {"cohorts": (10_000, 50_000), "n_reps": 10},
        "nrmse",
        "n",
    ),
    "poisoning": (poisoning_sweep, {"n_clients": 2_000, "n_reps": 10}, "nrmse", "fraction"),
    "distributed-dp": (
        distributed_dp_comparison,
        {"n_clients": 10_000, "n_reps": 10},
        "nrmse",
        "epsilon",
    ),
    "dropout": (dropout_adjustment, {"n_clients": 1_000, "n_reps": 5}, "nrmse", "dropout rate"),
    "schedule-sensitivity": (
        schedule_sensitivity,
        {"n_clients": 2_000, "n_reps": 10},
        "nrmse",
        "uniform mix fraction",
    ),
}


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-figures",
        description="Reproduce figures from 'Private and Efficient Federated Numerical Aggregation'",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    fig = sub.add_parser("figure", help="reproduce a paper figure panel")
    fig.add_argument("panel", choices=sorted(FIGURES) + ["4b"])
    fig.add_argument("--quick", action="store_true", help="scaled-down parameters")

    abl = sub.add_parser("ablation", help="run a design-choice ablation")
    abl.add_argument("name", choices=sorted(ABLATIONS))
    abl.add_argument("--quick", action="store_true", help="scaled-down parameters")

    sub.add_parser("list", help="list available figures and ablations")
    return parser


def main(argv: list[str] | None = None) -> int:
    try:
        return _dispatch(argv)
    except BrokenPipeError:
        # Output piped into a pager/head that closed early -- not an error.
        return 0


def _dispatch(argv: list[str] | None) -> int:
    args = _build_parser().parse_args(argv)

    if args.command == "list":
        print("figures:  " + " ".join(sorted(FIGURES) + ["4b"]))
        print("ablations: " + " ".join(sorted(ABLATIONS)))
        return 0

    if args.command == "figure":
        if args.panel == "4b":
            snapshot = figure_4b()
            print(render_snapshot(snapshot))
            return 0
        runner, quick_kwargs, metric, x_name = FIGURES[args.panel]
        results = runner(**(quick_kwargs if args.quick else {}))
        print(render_series_table(f"Figure {args.panel}", results, metric=metric, x_name=x_name))
        return 0

    runner, quick_kwargs, metric, x_name = ABLATIONS[args.name]
    results = runner(**(quick_kwargs if args.quick else {}))
    print(render_series_table(f"Ablation: {args.name}", results, metric=metric, x_name=x_name))
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
