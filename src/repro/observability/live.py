"""Live campaign monitor: per-round progress lines on stderr.

``repro.cli trace --watch`` attaches a :class:`LiveMonitor` next to the
other exporters: every closing ``federated.round`` span becomes one
progress line -- round/attempt, delivered vs planned reports, cumulative
report throughput, a naive ETA from the mean round duration, and whatever
health alerts are currently firing.  Output goes to **stderr** so the
machine-readable stdout JSON stream is never perturbed; piping
``trace --json --watch`` through ``jq`` keeps working.

Time comes from span timestamps, never from a wall-clock read of its own,
so ``--sim-clock`` watch output is deterministic too (handy in tests).
"""

from __future__ import annotations

import sys
from typing import IO, Any

from repro.observability.health import HealthMonitor, rank_active
from repro.observability.tracing import SpanRecord

__all__ = ["LiveMonitor"]


class LiveMonitor:
    """Tracer exporter rendering one stderr line per completed round.

    Parameters
    ----------
    planned_rounds:
        Expected round count; enables the ETA column.  ``None`` renders
        progress without an ETA.
    health:
        Optional :class:`HealthMonitor` whose active alerts are appended to
        every line.  The live monitor only *reads* the health state; wiring
        the health monitor itself (as an exporter or via hooks) is the
        caller's job, so attaching a watcher never double-evaluates rules.
    stream:
        Defaults to ``sys.stderr`` (resolved at write time, so pytest's
        capsys and CLI redirections both behave).
    round_span:
        Span name treated as a round boundary.
    """

    def __init__(
        self,
        planned_rounds: int | None = None,
        health: HealthMonitor | None = None,
        stream: IO[str] | None = None,
        round_span: str = "federated.round",
    ) -> None:
        self.planned_rounds = planned_rounds
        self.health = health
        self._stream = stream
        self._round_span = round_span
        self._rounds_seen = 0
        self._reports_total = 0
        self._first_start: float | None = None
        self._last_end: float | None = None

    def _out(self) -> IO[str]:
        return self._stream if self._stream is not None else sys.stderr

    # -- exporter protocol ---------------------------------------------
    def export(self, record: SpanRecord) -> None:
        if record.name != self._round_span:
            return
        attrs = record.attributes
        self._rounds_seen += 1
        survived = int(attrs.get("surviving_clients") or 0)
        planned = int(attrs.get("planned_clients") or 0)
        self._reports_total += survived
        if self._first_start is None:
            self._first_start = record.start_time_s
        self._last_end = record.start_time_s + record.duration_s
        self.emit(
            round_index=attrs.get("round_index"),
            attempt=attrs.get("attempt"),
            survived=survived,
            planned=planned,
            failed=bool(attrs.get("failed")),
            degraded=bool(attrs.get("degraded")),
        )

    # -- direct wiring (untraced campaign loops) ------------------------
    def update(
        self,
        round_index: Any = None,
        attempt: Any = None,
        survived: int = 0,
        planned: int = 0,
        failed: bool = False,
        degraded: bool = False,
        duration_s: float = 0.0,
    ) -> None:
        """Record one round without a tracer (simulated durations)."""
        self._rounds_seen += 1
        self._reports_total += int(survived)
        if self._first_start is None:
            self._first_start = 0.0
            self._last_end = 0.0
        self._last_end = (self._last_end or 0.0) + float(duration_s)
        self.emit(
            round_index=round_index,
            attempt=attempt,
            survived=int(survived),
            planned=int(planned),
            failed=failed,
            degraded=degraded,
        )

    # -- rendering ------------------------------------------------------
    def emit(
        self,
        round_index: Any = None,
        attempt: Any = None,
        survived: int = 0,
        planned: int = 0,
        failed: bool = False,
        degraded: bool = False,
    ) -> None:
        """Render one progress line from the accumulated state."""
        elapsed = None
        if self._first_start is not None and self._last_end is not None:
            elapsed = max(0.0, self._last_end - self._first_start)
        parts = [f"round {round_index if round_index is not None else self._rounds_seen - 1}"]
        if attempt is not None and int(attempt) > 1:
            parts.append(f"attempt {attempt}")
        parts.append(f"{survived}/{planned} reports")
        if failed:
            parts.append("FAILED")
        elif degraded:
            parts.append("degraded")
        parts.append(f"{self._reports_total} total")
        if elapsed and elapsed > 0:
            parts.append(f"{self._reports_total / elapsed:.0f} reports/s")
        eta = self._eta(elapsed)
        if eta is not None:
            parts.append(f"ETA {eta:.1f}s")
        alerts = self.active_alert_labels()
        if alerts:
            parts.append("alerts: " + ", ".join(alerts))
        print("[watch] " + " | ".join(parts), file=self._out(), flush=True)

    def _eta(self, elapsed: float | None) -> float | None:
        if (
            self.planned_rounds is None
            or elapsed is None
            or elapsed <= 0
            or self._rounds_seen == 0
        ):
            return None
        remaining = max(0, self.planned_rounds - self._rounds_seen)
        return remaining * (elapsed / self._rounds_seen)

    def active_alert_labels(self) -> list[str]:
        if self.health is None:
            return []
        return [
            f"{alert['rule']}({alert['severity']})"
            for alert in rank_active(self.health.active_alerts())
        ]

    def finish(self, estimate: float | None = None) -> None:
        """Render a closing summary line."""
        parts = [f"{self._rounds_seen} round(s)", f"{self._reports_total} reports"]
        if estimate is not None:
            parts.append(f"estimate {estimate:.6g}")
        alerts = self.active_alert_labels()
        parts.append("alerts: " + (", ".join(alerts) if alerts else "none"))
        print("[watch] done | " + " | ".join(parts), file=self._out(), flush=True)
