"""Run registry: index flight-recorder artifacts and compare runs.

A campaign leaves one artifact directory per recorded run (``manifest.json``
+ ``events.jsonl`` + optional ``alerts.jsonl``).  This module makes a tree
of such directories *queryable*:

* :func:`scan_runs` walks a root for manifests and returns one
  :class:`RunIndexEntry` per artifact -- label, seed, format, estimate,
  alert counts -- tolerating corrupt manifests (flagged, not fatal);
* :func:`compare_runs` loads two artifacts and computes the cross-run
  deltas operators care about: per-phase latency percentiles with ratios,
  counter deltas, estimate-error drift, and fired-alert counts by rule and
  severity;
* :func:`check_comparison` turns a comparison into a pass/fail gate in the
  style of ``scripts/bench_summary.py --check``: phase-p95 regressions past
  a tolerance ratio, estimate-error blowups, and new critical alerts all
  fail the gate.

``repro.cli runs list|compare|check`` is the CLI surface; everything here
is a pure function of the artifacts, so the same directories always produce
the same output.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Any

from repro.observability.recorder import MANIFEST_FILENAME
from repro.observability.report import build_report, load_run

__all__ = [
    "RunIndexEntry",
    "scan_runs",
    "compare_runs",
    "check_comparison",
    "render_list_markdown",
    "render_compare_markdown",
]


@dataclass(frozen=True)
class RunIndexEntry:
    """One indexed artifact directory (or a corrupt one, flagged)."""

    directory: Path
    label: str | None = None
    seed: int | None = None
    format: int | None = None
    git_revision: str | None = None
    estimate: float | None = None
    observed_error: float | None = None
    epsilon_spent: float | None = None
    rounds: int = 0
    alerts_fired: int = 0
    alerts_active: int = 0
    error: str | None = None

    @property
    def ok(self) -> bool:
        return self.error is None

    def to_dict(self) -> dict[str, Any]:
        return {
            "directory": str(self.directory),
            "label": self.label,
            "seed": self.seed,
            "format": self.format,
            "git_revision": self.git_revision,
            "estimate": self.estimate,
            "observed_error": self.observed_error,
            "epsilon_spent": self.epsilon_spent,
            "rounds": self.rounds,
            "alerts_fired": self.alerts_fired,
            "alerts_active": self.alerts_active,
            "error": self.error,
        }


def _index_one(directory: Path) -> RunIndexEntry:
    manifest_path = directory / MANIFEST_FILENAME
    try:
        manifest = json.loads(manifest_path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        return RunIndexEntry(directory=directory, error=f"{type(exc).__name__}: {exc}")
    if not isinstance(manifest, dict):
        return RunIndexEntry(directory=directory, error="manifest is not a JSON object")
    estimate = manifest.get("estimate") or {}
    analysis = manifest.get("analysis") or {}
    privacy = manifest.get("privacy") or {}
    health = manifest.get("health") or {}
    events = manifest.get("events") or {}
    return RunIndexEntry(
        directory=directory,
        label=manifest.get("label"),
        seed=manifest.get("seed"),
        format=manifest.get("format"),
        git_revision=manifest.get("git_revision"),
        estimate=estimate.get("value"),
        observed_error=analysis.get("observed_error"),
        epsilon_spent=privacy.get("epsilon_spent"),
        rounds=int(events.get("rounds") or 0),
        alerts_fired=int(health.get("fired_total") or 0),
        alerts_active=len(health.get("active") or []),
    )


def scan_runs(root: str | Path) -> list[RunIndexEntry]:
    """Index every artifact directory under ``root`` (manifest-bearing dirs).

    ``root`` itself may be an artifact directory.  Entries come back sorted
    by directory path, so listings are stable across scans.
    """
    root = Path(root)
    if not root.exists():
        raise FileNotFoundError(f"run registry root {root} does not exist")
    manifest_paths = sorted(root.rglob(MANIFEST_FILENAME))
    return [_index_one(path.parent) for path in manifest_paths]


# ----------------------------------------------------------------------
# Cross-run comparison
# ----------------------------------------------------------------------


def _ratio(candidate: float | None, baseline: float | None) -> float | None:
    if candidate is None or baseline is None or baseline == 0:
        return None
    return candidate / baseline


def _alert_rollup(report: dict[str, Any]) -> dict[str, Any]:
    health = report.get("health") or {}
    by_rule = {
        name: int(stats.get("fired", 0)) for name, stats in (health.get("by_rule") or {}).items()
    }
    by_severity = {k: int(v) for k, v in (health.get("by_severity") or {}).items()}
    return {
        "fired_total": int(health.get("fired_total") or 0),
        "resolved_total": int(health.get("resolved_total") or 0),
        "active": len(health.get("active") or []),
        "by_rule": by_rule,
        "by_severity": by_severity,
    }


def compare_runs(baseline_dir: str | Path, candidate_dir: str | Path) -> dict[str, Any]:
    """Load two artifacts and compute their cross-run deltas.

    Returns a JSON-ready dict with four delta families: ``phases`` (p50/p95
    per shared phase plus the candidate/baseline p95 ratio, and the phases
    unique to either side), ``counters`` (values plus delta for the union of
    counter names), ``estimate`` (value and observed-error drift), and
    ``alerts`` (fired counts by rule and severity on both sides).
    """
    baseline_report = build_report(load_run(baseline_dir))
    candidate_report = build_report(load_run(candidate_dir))

    base_phases = {p["name"]: p for p in baseline_report.get("phases", [])}
    cand_phases = {p["name"]: p for p in candidate_report.get("phases", [])}
    shared = sorted(set(base_phases) & set(cand_phases))
    phases = [
        {
            "name": name,
            "baseline_p50_s": base_phases[name]["p50_s"],
            "candidate_p50_s": cand_phases[name]["p50_s"],
            "baseline_p95_s": base_phases[name]["p95_s"],
            "candidate_p95_s": cand_phases[name]["p95_s"],
            "baseline_p99_s": base_phases[name]["p99_s"],
            "candidate_p99_s": cand_phases[name]["p99_s"],
            "p95_ratio": _ratio(cand_phases[name]["p95_s"], base_phases[name]["p95_s"]),
        }
        for name in shared
    ]

    base_counters = baseline_report.get("counters", {})
    cand_counters = candidate_report.get("counters", {})
    counters = {
        name: {
            "baseline": base_counters.get(name),
            "candidate": cand_counters.get(name),
            "delta": (
                None
                if name not in base_counters or name not in cand_counters
                else cand_counters[name] - base_counters[name]
            ),
        }
        for name in sorted(set(base_counters) | set(cand_counters))
    }

    base_analysis = baseline_report.get("analysis") or {}
    cand_analysis = candidate_report.get("analysis") or {}
    base_estimate = baseline_report.get("estimate") or {}
    cand_estimate = candidate_report.get("estimate") or {}
    estimate = {
        "baseline_value": base_estimate.get("value"),
        "candidate_value": cand_estimate.get("value"),
        "baseline_observed_error": base_analysis.get("observed_error"),
        "candidate_observed_error": cand_analysis.get("observed_error"),
        "error_ratio": _ratio(
            cand_analysis.get("observed_error"), base_analysis.get("observed_error")
        ),
    }

    return {
        "baseline": {
            "directory": str(Path(baseline_dir)),
            "label": baseline_report.get("label"),
            "seed": baseline_report.get("seed"),
        },
        "candidate": {
            "directory": str(Path(candidate_dir)),
            "label": candidate_report.get("label"),
            "seed": candidate_report.get("seed"),
        },
        "phases": phases,
        "phases_only_baseline": sorted(set(base_phases) - set(cand_phases)),
        "phases_only_candidate": sorted(set(cand_phases) - set(base_phases)),
        "counters": counters,
        "estimate": estimate,
        "alerts": {
            "baseline": _alert_rollup(baseline_report),
            "candidate": _alert_rollup(candidate_report),
        },
    }


def check_comparison(comparison: dict[str, Any], tolerance: float = 1.25) -> tuple[bool, list[str]]:
    """Gate a comparison: ``(ok, messages)`` in the bench-check idiom.

    Fails when a shared phase's p95 regressed past ``tolerance``x, the
    observed estimate error grew past ``tolerance``x, or the candidate
    fired more critical alerts than the baseline.  Improvements are
    reported but never fail.
    """
    if tolerance <= 1.0:
        raise ValueError(f"tolerance must be > 1.0, got {tolerance}")
    messages: list[str] = []
    ok = True
    for phase in comparison.get("phases", []):
        ratio = phase.get("p95_ratio")
        if ratio is None:
            continue
        if ratio > tolerance:
            ok = False
            messages.append(
                f"REGRESSION {phase['name']}: p95 {phase['baseline_p95_s']:.6g}s -> "
                f"{phase['candidate_p95_s']:.6g}s ({ratio:.2f}x > {tolerance:.2f}x)"
            )
        elif ratio < 1.0 / tolerance:
            messages.append(
                f"improved {phase['name']}: p95 {phase['baseline_p95_s']:.6g}s -> "
                f"{phase['candidate_p95_s']:.6g}s ({ratio:.2f}x)"
            )
    estimate = comparison.get("estimate", {})
    error_ratio = estimate.get("error_ratio")
    if error_ratio is not None and error_ratio > tolerance:
        ok = False
        messages.append(
            f"REGRESSION estimate error: {estimate['baseline_observed_error']:.6g} -> "
            f"{estimate['candidate_observed_error']:.6g} ({error_ratio:.2f}x > {tolerance:.2f}x)"
        )
    alerts = comparison.get("alerts", {})
    base_critical = (alerts.get("baseline", {}).get("by_severity") or {}).get("critical", 0)
    cand_critical = (alerts.get("candidate", {}).get("by_severity") or {}).get("critical", 0)
    if cand_critical > base_critical:
        ok = False
        messages.append(
            f"REGRESSION alerts: candidate fired {cand_critical} critical alert(s) "
            f"vs baseline {base_critical}"
        )
    if ok and not messages:
        messages.append("no regressions detected")
    return ok, messages


# ----------------------------------------------------------------------
# Rendering
# ----------------------------------------------------------------------


def _num(value: Any) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        return f"{value:.6g}"
    return str(value)


def render_list_markdown(entries: list[RunIndexEntry], root: str | Path) -> str:
    """Render an index listing as a Markdown table."""
    lines = [f"# Recorded runs under {root}", ""]
    good = [e for e in entries if e.ok]
    bad = [e for e in entries if not e.ok]
    if good:
        lines.append(
            "| run | label | seed | rounds | estimate | observed error "
            "| eps spent | alerts fired | active |"
        )
        lines.append("| --- | --- | --- | --- | --- | --- | --- | --- | --- |")
        for entry in good:
            lines.append(
                f"| {entry.directory} | {entry.label} | {_num(entry.seed)} | "
                f"{entry.rounds} | {_num(entry.estimate)} | {_num(entry.observed_error)} | "
                f"{_num(entry.epsilon_spent)} | {entry.alerts_fired} | {entry.alerts_active} |"
            )
    else:
        lines.append("(no readable runs found)")
    if bad:
        lines.append("")
        lines.append("## Unreadable artifacts")
        lines.append("")
        for entry in bad:
            lines.append(f"- {entry.directory}: {entry.error}")
    lines.append("")
    return "\n".join(lines)


def render_compare_markdown(comparison: dict[str, Any]) -> str:
    """Render a comparison as the human-facing Markdown document."""
    lines: list[str] = []
    out = lines.append
    baseline = comparison.get("baseline", {})
    candidate = comparison.get("candidate", {})
    out(f"# Run comparison: {baseline.get('label')} -> {candidate.get('label')}")
    out("")
    out(f"- baseline: {baseline.get('directory')} (seed {_num(baseline.get('seed'))})")
    out(f"- candidate: {candidate.get('directory')} (seed {_num(candidate.get('seed'))})")
    out("")

    out("## Phase percentiles")
    out("")
    phases = comparison.get("phases", [])
    if phases:
        out("| phase | p50 base (ms) | p50 cand (ms) | p95 base (ms) | p95 cand (ms) | p95 ratio |")
        out("| --- | --- | --- | --- | --- | --- |")
        for phase in phases:
            ratio = phase.get("p95_ratio")
            out(
                f"| {phase['name']} | {phase['baseline_p50_s'] * 1e3:.3f} | "
                f"{phase['candidate_p50_s'] * 1e3:.3f} | {phase['baseline_p95_s'] * 1e3:.3f} | "
                f"{phase['candidate_p95_s'] * 1e3:.3f} | "
                + (f"{ratio:.2f}x |" if ratio is not None else "- |")
            )
    else:
        out("(no shared phases)")
    for key, title in (
        ("phases_only_baseline", "baseline only"),
        ("phases_only_candidate", "candidate only"),
    ):
        names = comparison.get(key, [])
        if names:
            out("")
            out(f"Phases {title}: " + ", ".join(names))
    out("")

    out("## Estimate")
    out("")
    estimate = comparison.get("estimate", {})
    out("| quantity | baseline | candidate |")
    out("| --- | --- | --- |")
    out(
        f"| value | {_num(estimate.get('baseline_value'))} | "
        f"{_num(estimate.get('candidate_value'))} |"
    )
    out(
        f"| observed error | {_num(estimate.get('baseline_observed_error'))} | "
        f"{_num(estimate.get('candidate_observed_error'))} |"
    )
    ratio = estimate.get("error_ratio")
    if ratio is not None:
        out(f"| error ratio | - | {ratio:.2f}x |")
    out("")

    out("## Counters")
    out("")
    counters = comparison.get("counters", {})
    if counters:
        out("| counter | baseline | candidate | delta |")
        out("| --- | --- | --- | --- |")
        for name, row in counters.items():
            out(
                f"| {name} | {_num(row.get('baseline'))} | {_num(row.get('candidate'))} | "
                f"{_num(row.get('delta'))} |"
            )
    else:
        out("(no counters recorded)")
    out("")

    out("## Alerts")
    out("")
    alerts = comparison.get("alerts", {})
    out("| side | fired | resolved | active | by severity |")
    out("| --- | --- | --- | --- | --- |")
    for side in ("baseline", "candidate"):
        rollup = alerts.get(side, {})
        severities = rollup.get("by_severity") or {}
        rendered = (
            ", ".join(f"{k}={severities[k]}" for k in sorted(severities)) if severities else "-"
        )
        out(
            f"| {side} | {rollup.get('fired_total', 0)} | {rollup.get('resolved_total', 0)} | "
            f"{rollup.get('active', 0)} | {rendered} |"
        )
    rules = sorted(
        set((alerts.get("baseline", {}).get("by_rule") or {}))
        | set((alerts.get("candidate", {}).get("by_rule") or {}))
    )
    if rules:
        out("")
        out("| rule | baseline fired | candidate fired |")
        out("| --- | --- | --- |")
        for rule in rules:
            out(
                f"| {rule} | {(alerts.get('baseline', {}).get('by_rule') or {}).get(rule, 0)} | "
                f"{(alerts.get('candidate', {}).get('by_rule') or {}).get(rule, 0)} |"
            )
    out("")
    return "\n".join(lines)
