"""Chrome trace-event export: merged round timelines for Perfetto / about:tracing.

A served round's flight-recorder artifact holds two kinds of spans: the
server's own phases (``serve.round``, ``serve.announce``, ``serve.collect``,
...) and remote spans ingested from fleet telemetry (``fleet.round``,
``fleet.encode``, ``fleet.uplink``, stamped ``remote: True`` with a
``client`` attribute and clock-skew-aligned timestamps).  This module lays
them out as Chrome trace-event JSON -- the ``{"traceEvents": [...]}`` format
that Perfetto and ``chrome://tracing`` render natively -- with the server's
phases on their own track and one track per fleet client, so one timeline
shows ANNOUNCE fan-out, every client's encode/uplink window, and the
server-side collect/reconstruct tail end to end.

Timestamps are emitted in microseconds relative to the earliest span in the
export (Chrome's viewers dislike epoch-sized ``ts`` values); durations are
clamped to a minimum of one microsecond so zero-length ``SimClock`` spans
stay clickable.  The export is a pure function of the span stream: the same
artifact always produces the same JSON.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Sequence

from repro.observability.tracing import SpanRecord

__all__ = ["SERVER_TRACK", "build_chrome_trace", "write_chrome_trace"]

#: Thread id of the server-phase track (clients are numbered from 1).
SERVER_TRACK = 0

_PID = 1
_MIN_DURATION_US = 1.0


def _span_args(record: SpanRecord) -> dict[str, Any]:
    args: dict[str, Any] = {"span_id": record.span_id}
    if record.parent_id is not None:
        args["parent_id"] = record.parent_id
    if record.status != "ok":
        args["status"] = record.status
    for key in sorted(record.attributes):
        value = record.attributes[key]
        if isinstance(value, (list, tuple)):
            value = list(value)
        args[key] = value
    return args


def build_chrome_trace(
    records: Sequence[SpanRecord], label: str = "repro"
) -> dict[str, Any]:
    """Lay out a span stream as a Chrome trace-event document.

    Local (server) spans land on thread :data:`SERVER_TRACK`; spans whose
    attributes carry ``remote: True`` land on one thread per distinct
    ``client`` attribute, ordered by client id.  Returns the complete
    ``{"traceEvents": [...], ...}`` document, metadata events included.
    """
    spans = list(records)
    clients = sorted(
        {
            int(record.attributes["client"])
            for record in spans
            if record.attributes.get("remote") and "client" in record.attributes
        }
    )
    tids = {client: index + 1 for index, client in enumerate(clients)}
    origin_s = min((record.start_time_s for record in spans), default=0.0)

    events: list[dict[str, Any]] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": _PID,
            "tid": SERVER_TRACK,
            "args": {"name": label},
        },
        {
            "name": "thread_name",
            "ph": "M",
            "pid": _PID,
            "tid": SERVER_TRACK,
            "args": {"name": "server"},
        },
    ]
    for client in clients:
        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": _PID,
                "tid": tids[client],
                "args": {"name": f"client {client}"},
            }
        )

    for record in spans:
        remote = bool(record.attributes.get("remote"))
        if remote and "client" in record.attributes:
            tid = tids[int(record.attributes["client"])]
        else:
            tid = SERVER_TRACK
        events.append(
            {
                "name": record.name,
                "cat": "fleet" if remote else "server",
                "ph": "X",
                "ts": (record.start_time_s - origin_s) * 1e6,
                "dur": max(record.duration_s * 1e6, _MIN_DURATION_US),
                "pid": _PID,
                "tid": tid,
                "args": _span_args(record),
            }
        )

    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "label": label,
            "spans": len(spans),
            "clients": len(clients),
        },
    }


def write_chrome_trace(
    path: str | Path, records: Sequence[SpanRecord], label: str = "repro"
) -> dict[str, Any]:
    """Build the trace document and write it to ``path``; returns the document."""
    document = build_chrome_trace(records, label=label)
    path = Path(path)
    if path.parent != Path(""):
        path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(document, sort_keys=True) + "\n")
    return document
