"""Observability substrate: tracing spans, metrics, and exporters.

The library is instrumented everywhere (cohort selection, bit assignment,
network transmission, secure aggregation, privacy accounting, adaptive
scheduling) against a process-wide tracer/metrics pair that defaults to
no-ops.  Nothing is timed, allocated, or exported -- and no RNG stream is
touched -- until instrumentation is explicitly installed:

    from repro.observability import InMemoryExporter, MetricsRegistry, Tracer, instrumented

    exporter = InMemoryExporter()
    with instrumented(Tracer([exporter]), MetricsRegistry()) as (tracer, metrics):
        estimate = query.run(population, rng=0)
    print(format_span_tree(exporter.records))
    print(metrics.snapshot())

``python -m repro.cli trace <figure|ablation>`` wraps exactly this around a
representative federated round and writes the spans plus a final metrics
snapshot as JSON lines.  The span and metric catalogue lives in
``docs/observability.md``.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator

from repro.observability.chrome_trace import build_chrome_trace, write_chrome_trace
from repro.observability.exporters import (
    ConsoleExporter,
    InMemoryExporter,
    JsonLinesExporter,
    format_span_tree,
)
from repro.observability.health import (
    ALERTS_FILENAME,
    AlertEvent,
    HealthMonitor,
    HealthRule,
    HealthSample,
    default_rules,
    load_alerts,
)
from repro.observability.live import LiveMonitor
from repro.observability.metrics import (
    DEFAULT_DURATION_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullMetrics,
    NULL_METRICS,
)
from repro.observability.profiler import (
    DEFAULT_PHASE_BUCKETS,
    PhaseProfiler,
    PhaseSummary,
)
from repro.observability.recorder import (
    ARTIFACT_FORMAT,
    FlightRecorder,
    git_revision,
)
from repro.observability.registry import (
    RunIndexEntry,
    check_comparison,
    compare_runs,
    render_compare_markdown,
    render_list_markdown,
    scan_runs,
)
from repro.observability.report import (
    RunArtifact,
    build_report,
    load_run,
    render_markdown,
)
from repro.observability.tracing import (
    NullSpan,
    NullTracer,
    NULL_TRACER,
    SimClock,
    Span,
    SpanRecord,
    Tracer,
)

__all__ = [
    "ALERTS_FILENAME",
    "ARTIFACT_FORMAT",
    "AlertEvent",
    "ConsoleExporter",
    "Counter",
    "DEFAULT_DURATION_BUCKETS",
    "DEFAULT_PHASE_BUCKETS",
    "FlightRecorder",
    "Gauge",
    "HealthMonitor",
    "HealthRule",
    "HealthSample",
    "Histogram",
    "InMemoryExporter",
    "JsonLinesExporter",
    "LiveMonitor",
    "MetricsRegistry",
    "NULL_METRICS",
    "NULL_TRACER",
    "NullMetrics",
    "NullSpan",
    "NullTracer",
    "PhaseProfiler",
    "PhaseSummary",
    "RunArtifact",
    "RunIndexEntry",
    "SimClock",
    "Span",
    "SpanRecord",
    "Tracer",
    "build_chrome_trace",
    "build_report",
    "check_comparison",
    "compare_runs",
    "configure",
    "default_rules",
    "disable",
    "format_span_tree",
    "get_metrics",
    "get_tracer",
    "git_revision",
    "instrumented",
    "load_alerts",
    "load_run",
    "render_compare_markdown",
    "render_list_markdown",
    "render_markdown",
    "scan_runs",
    "write_chrome_trace",
]

# Process-wide instrumentation state.  Plain module globals (not
# contextvars): get_tracer()/get_metrics() sit on per-round hot paths and a
# dict-free global read is the cheapest thing Python offers.
_tracer: Tracer | NullTracer = NULL_TRACER
_metrics: MetricsRegistry | NullMetrics = NULL_METRICS


def get_tracer() -> Tracer | NullTracer:
    """The currently installed tracer (the no-op tracer by default)."""
    return _tracer


def get_metrics() -> MetricsRegistry | NullMetrics:
    """The currently installed metrics registry (no-op by default)."""
    return _metrics


def configure(
    tracer: Tracer | NullTracer | None = None,
    metrics: MetricsRegistry | NullMetrics | None = None,
) -> None:
    """Install instrumentation process-wide; ``None`` leaves that half alone."""
    global _tracer, _metrics
    if tracer is not None:
        _tracer = tracer
    if metrics is not None:
        _metrics = metrics


def disable() -> None:
    """Restore the zero-overhead defaults."""
    global _tracer, _metrics
    _tracer = NULL_TRACER
    _metrics = NULL_METRICS


@contextmanager
def instrumented(
    tracer: Tracer | NullTracer | None = None,
    metrics: MetricsRegistry | NullMetrics | None = None,
) -> Iterator[tuple[Tracer | NullTracer, MetricsRegistry | NullMetrics]]:
    """Temporarily install instrumentation, restoring the previous state.

    Omitted halves get fresh defaults: a :class:`Tracer` with no exporters
    is *not* useful, so ``tracer=None`` keeps whatever is installed;
    ``metrics=None`` likewise.  Yields the active ``(tracer, metrics)``.
    """
    global _tracer, _metrics
    previous = (_tracer, _metrics)
    if tracer is not None:
        _tracer = tracer
    if metrics is not None:
        _metrics = metrics
    try:
        yield (_tracer, _metrics)
    finally:
        _tracer, _metrics = previous
