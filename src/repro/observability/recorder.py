"""Campaign flight recorder: one structured artifact per run.

A :class:`FlightRecorder` captures everything a run did into one directory:

* ``events.jsonl`` -- the span stream (the recorder is a tracer exporter),
  round-boundary metric snapshots (one ``{"type": "round"}`` line each time
  a ``federated.round`` span closes), and free-form ``{"type": "event"}``
  lines (campaign rounds, operator notes);
* ``manifest.json`` -- the run's identity and outcome: config, seed, git
  revision, final estimate, error-vs-bound analysis, metrics snapshot,
  phase profile, privacy-ledger spends, and bit-meter totals.

Every event line is flushed as it is written (``flush_every=1``), so a
crashed run keeps its event log up to the moment of death; ``append=True``
lets a resumed run extend an earlier log.  ``repro.cli report <dir>``
renders the artifact (see :mod:`repro.observability.report`), and
``repro.cli trace <target> --record <dir>`` produces one.

Recorded timings are wall-clock by default; pair the recorder with a
:class:`~repro.observability.tracing.SimClock`-driven tracer (CLI flag
``--sim-clock``) when byte-identical artifacts across same-seed runs
matter more than real latencies.
"""

from __future__ import annotations

import json
import subprocess
from pathlib import Path
from typing import Any, Mapping

from repro.observability.exporters import JsonLinesExporter
from repro.observability.tracing import SpanRecord

__all__ = [
    "ARTIFACT_FORMAT",
    "EVENTS_FILENAME",
    "MANIFEST_FILENAME",
    "FlightRecorder",
    "git_revision",
]

#: Artifact schema version, bumped on breaking manifest/event changes.
ARTIFACT_FORMAT = 1

EVENTS_FILENAME = "events.jsonl"
MANIFEST_FILENAME = "manifest.json"


def git_revision(cwd: str | Path | None = None) -> str | None:
    """The current ``git rev-parse HEAD``, or ``None`` outside a checkout."""
    try:
        proc = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True,
            text=True,
            timeout=5,
            cwd=cwd,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    revision = proc.stdout.strip()
    return revision if proc.returncode == 0 and revision else None


def _estimate_payload(estimate: Any) -> dict[str, Any]:
    """JSON-ready projection of a :class:`~repro.core.results.MeanEstimate`."""
    payload = {
        "value": float(estimate.value),
        "encoded_value": float(estimate.encoded_value),
        "n_clients": int(estimate.n_clients),
        "n_bits": int(estimate.n_bits),
        "method": estimate.method,
        "bit_means": [float(x) for x in estimate.bit_means],
        "counts": [int(x) for x in estimate.counts],
        "squashed_bits": [int(x) for x in estimate.squashed_bits],
        "metadata": json.loads(json.dumps(dict(estimate.metadata), default=str)),
    }
    return payload


class FlightRecorder:
    """Record one run's spans, events, and outcome into a directory.

    Parameters
    ----------
    directory:
        Artifact directory (created if missing).
    config:
        JSON-ready run configuration, stored verbatim in the manifest.
    seed:
        The run's RNG seed (manifest field; reports surface it).
    label:
        Human-readable run label (default: the directory name).
    metrics:
        Optional live :class:`~repro.observability.metrics.MetricsRegistry`;
        when given, each closing ``round_span`` writes a round-boundary
        metrics snapshot into the event log.
    append:
        Extend an existing ``events.jsonl`` instead of truncating it.
    round_span:
        Span name treated as a round boundary (default ``federated.round``).
    """

    def __init__(
        self,
        directory: str | Path,
        config: Mapping[str, Any] | None = None,
        seed: int | None = None,
        label: str | None = None,
        metrics: Any = None,
        append: bool = False,
        round_span: str = "federated.round",
    ) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.events_path = self.directory / EVENTS_FILENAME
        self.manifest_path = self.directory / MANIFEST_FILENAME
        self.config = dict(config) if config else {}
        self.seed = seed
        self.label = label if label is not None else self.directory.name
        self._metrics = metrics
        self._round_span = round_span
        self._events = JsonLinesExporter(self.events_path, flush_every=1, append=append)
        self._n_spans = 0
        self._n_remote_spans = 0
        self._n_rounds = 0
        self._n_events = 0
        self._finalized = False

    # -- exporter protocol ---------------------------------------------
    def export(self, record: SpanRecord) -> None:
        """Write one span line; round spans also snapshot the metrics."""
        self._events.export(record)
        self._n_spans += 1
        if record.attributes.get("remote"):
            self._n_remote_spans += 1
        if record.name == self._round_span:
            self._n_rounds += 1
            boundary: dict[str, Any] = {
                "type": "round",
                "boundary": self._n_rounds,
                "round_index": record.attributes.get("round_index"),
                "attempt": record.attributes.get("attempt"),
            }
            if self._metrics is not None:
                boundary["metrics"] = self._metrics.snapshot()
            self._events.write_line(boundary)

    # -- explicit event surface ----------------------------------------
    def record_event(self, kind: str, payload: Mapping[str, Any] | None = None) -> None:
        """Append one free-form event line (``{"type": "event", "kind": ...}``)."""
        line: dict[str, Any] = {"type": "event", "kind": kind}
        if payload:
            line.update(dict(payload))
        self._events.write_line(line)
        self._n_events += 1

    def record_metrics(self, snapshot: Mapping[str, Any], label: str = "snapshot") -> None:
        """Append a labelled metrics-snapshot line."""
        self._events.write_line({"type": "metrics", "label": label, "metrics": dict(snapshot)})

    # -- manifest -------------------------------------------------------
    def finalize(
        self,
        estimate: Any = None,
        metrics: Mapping[str, Any] | None = None,
        profiler: Any = None,
        accountant: Any = None,
        meter: Any = None,
        analysis: Mapping[str, Any] | None = None,
        extra: Mapping[str, Any] | None = None,
    ) -> dict[str, Any]:
        """Write ``manifest.json``, close the event log, return the manifest.

        Idempotence is not attempted: a second call raises (the artifact is
        complete once finalized).
        """
        if self._finalized:
            raise ValueError(f"flight recorder for {self.directory} already finalized")
        self._finalized = True
        manifest: dict[str, Any] = {
            "format": ARTIFACT_FORMAT,
            "label": self.label,
            "seed": self.seed,
            "git_revision": git_revision(),
            "config": self.config,
            "events": {
                "path": EVENTS_FILENAME,
                "spans": self._n_spans,
                "remote_spans": self._n_remote_spans,
                "rounds": self._n_rounds,
                "events": self._n_events,
            },
        }
        if estimate is not None:
            manifest["estimate"] = _estimate_payload(estimate)
        if analysis is not None:
            manifest["analysis"] = dict(analysis)
        if metrics is not None:
            snapshot = dict(metrics)
            manifest["metrics"] = snapshot
            self.record_metrics(snapshot, label="final")
        if profiler is not None:
            manifest["profile"] = profiler.summary()
        if accountant is not None:
            manifest["privacy"] = {
                "epsilon_spent": float(accountant.spent_epsilon),
                "delta_spent": float(accountant.spent_delta),
                "epsilon_budget": accountant.epsilon_budget,
                "delta_budget": accountant.delta_budget,
                "ledger": [
                    {"epsilon": entry.epsilon, "delta": entry.delta, "note": entry.note}
                    for entry in accountant.entries
                ],
            }
        if meter is not None:
            manifest["bit_meter"] = {
                "total_bits": int(meter.total_bits),
                "max_bits_per_value": int(meter.max_bits_per_value),
                "max_bits_per_client": meter.max_bits_per_client,
            }
        if extra:
            manifest.update(dict(extra))
        self.manifest_path.write_text(
            json.dumps(manifest, indent=2, sort_keys=True, default=str) + "\n"
        )
        self._events.close()
        return manifest

    def close(self) -> None:
        """Close the event log without writing a manifest (aborted runs)."""
        self._events.close()
