"""Run reports: render a flight-recorder artifact as Markdown or JSON.

``repro.cli report <run-dir>`` loads the artifact a
:class:`~repro.observability.recorder.FlightRecorder` wrote (``events.jsonl``
+ ``manifest.json``) and renders what the campaign actually did:

* the hot-path span tree and per-phase latency percentiles (p50/p95/p99),
* total bits sent against the paper's one-bit-per-client budget,
* the epsilon-spend timeline from the privacy ledger,
* the retry/degradation timeline (every round attempt, failures included),
* the observed estimate error against the Lemma 3.1 two-sigma bound.

Rendering is a pure function of the artifact: the same directory always
produces the same report, and artifacts recorded under ``--sim-clock`` are
byte-identical across same-seed runs, timings included.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.observability.exporters import format_span_tree
from repro.observability.health import load_alerts
from repro.observability.profiler import DEFAULT_PHASE_BUCKETS
from repro.observability.metrics import Histogram
from repro.observability.recorder import EVENTS_FILENAME, MANIFEST_FILENAME
from repro.observability.tracing import SpanRecord

__all__ = ["RunArtifact", "load_run", "build_report", "render_markdown"]


@dataclass(frozen=True)
class RunArtifact:
    """One recorded run: its manifest plus the parsed event stream."""

    directory: Path
    manifest: dict[str, Any]
    events: list[dict[str, Any]]
    skipped_lines: int = 0
    alerts: list[dict[str, Any]] = field(default_factory=list)

    def spans(self) -> list[SpanRecord]:
        """Reconstruct the span stream in its original (completion) order."""
        records = []
        for event in self.events:
            if event.get("type") != "span":
                continue
            records.append(
                SpanRecord(
                    name=event["name"],
                    span_id=int(event["span_id"]),
                    parent_id=event["parent_id"],
                    start_time_s=float(event["start_time_s"]),
                    duration_s=float(event["duration_s"]),
                    status=event.get("status", "ok"),
                    attributes=dict(event.get("attributes", {})),
                )
            )
        return records


def load_run(directory: str | Path) -> RunArtifact:
    """Load a flight-recorder artifact directory.

    A truncated final event line (crashed run) is skipped, not fatal --
    everything the recorder flushed before death is still reported.
    """
    directory = Path(directory)
    manifest_path = directory / MANIFEST_FILENAME
    events_path = directory / EVENTS_FILENAME
    if not manifest_path.exists():
        raise FileNotFoundError(
            f"{manifest_path} not found -- is {directory} a recorded run? "
            "(produce one with `repro.cli trace <target> --record <dir>`)"
        )
    manifest = json.loads(manifest_path.read_text())
    events: list[dict[str, Any]] = []
    skipped = 0
    if events_path.exists():
        for line in events_path.read_text().splitlines():
            if not line.strip():
                continue
            try:
                events.append(json.loads(line))
            except json.JSONDecodeError:
                skipped += 1
    return RunArtifact(
        directory=directory,
        manifest=manifest,
        events=events,
        skipped_lines=skipped,
        alerts=load_alerts(directory),
    )


def _phases_from_events(artifact: RunArtifact) -> list[dict[str, Any]]:
    """Per-phase summary recomputed from span events (pre-profiler artifacts)."""
    histograms: dict[str, Histogram] = {}
    totals: dict[str, float] = {}
    cpu_totals: dict[str, float] = {}
    counts: dict[str, int] = {}
    for record in artifact.spans():
        hist = histograms.get(record.name)
        if hist is None:
            hist = histograms[record.name] = Histogram(record.name, DEFAULT_PHASE_BUCKETS)
            totals[record.name] = 0.0
            cpu_totals[record.name] = 0.0
            counts[record.name] = 0
        hist.observe(record.duration_s)
        totals[record.name] += record.duration_s
        cpu_totals[record.name] += float(record.attributes.get("cpu_time_s", 0.0))
        counts[record.name] += 1
    phases = [
        {
            "name": name,
            "count": counts[name],
            "total_s": totals[name],
            "cpu_total_s": cpu_totals[name],
            "p50_s": hist.quantile(0.5),
            "p95_s": hist.quantile(0.95),
            "p99_s": hist.quantile(0.99),
        }
        for name, hist in histograms.items()
    ]
    phases.sort(key=lambda p: (-p["total_s"], p["name"]))
    return phases


def _recovery_timeline(artifact: RunArtifact) -> list[dict[str, Any]]:
    """Every round attempt plus retry waits, in start-time order."""
    entries: list[dict[str, Any]] = []
    for record in artifact.spans():
        attrs = record.attributes
        if record.name == "round.retry":
            entries.append(
                {
                    "t_s": record.start_time_s,
                    "kind": "retry",
                    "round_index": attrs.get("round_index"),
                    "attempt": attrs.get("failed_attempt"),
                    "detail": (
                        f"backoff {attrs.get('backoff_s', 0.0):.1f}s before attempt "
                        f"{attrs.get('next_attempt')}: {attrs.get('reason', '')}"
                    ),
                }
            )
        elif record.name == "federated.round":
            if attrs.get("failed"):
                kind = "failed"
                detail = (
                    f"{attrs.get('surviving_clients')}/{attrs.get('planned_clients')} "
                    "survivors (below quorum)"
                )
            elif attrs.get("degraded"):
                kind = "degraded"
                detail = (
                    f"{attrs.get('surviving_clients')}/{attrs.get('planned_clients')} "
                    f"survivors, variance x{attrs.get('variance_inflation', 1.0):.2f}"
                )
            else:
                kind = "completed"
                detail = (
                    f"{attrs.get('surviving_clients')}/{attrs.get('planned_clients')} "
                    "survivors"
                )
            if attrs.get("faults"):
                detail += f" [faults: {attrs['faults']}]"
            entries.append(
                {
                    "t_s": record.start_time_s,
                    "kind": kind,
                    "round_index": attrs.get("round_index"),
                    "attempt": attrs.get("attempt"),
                    "detail": detail,
                }
            )
    entries.sort(key=lambda e: e["t_s"])
    return entries


def _privacy_timeline(manifest: dict[str, Any]) -> dict[str, Any]:
    privacy = manifest.get("privacy") or {}
    timeline = []
    cumulative = 0.0
    for step, entry in enumerate(privacy.get("ledger", []), start=1):
        cumulative += float(entry.get("epsilon", 0.0))
        timeline.append(
            {
                "step": step,
                "epsilon": float(entry.get("epsilon", 0.0)),
                "cumulative_epsilon": cumulative,
                "note": entry.get("note", ""),
            }
        )
    return {
        "epsilon_spent": float(privacy.get("epsilon_spent", 0.0)),
        "delta_spent": float(privacy.get("delta_spent", 0.0)),
        "epsilon_budget": privacy.get("epsilon_budget"),
        "timeline": timeline,
    }


def _communication(manifest: dict[str, Any]) -> dict[str, Any]:
    counters = (manifest.get("metrics") or {}).get("counters", {})
    config = manifest.get("config", {})
    delivered = float(counters.get("round_reports_delivered_total", 0.0))
    planned = float(counters.get("round_reports_planned_total", 0.0))
    lost = float(counters.get("round_reports_lost_total", 0.0))
    n_clients = config.get("n_clients")
    budget = float(n_clients) if n_clients else None
    meter = manifest.get("bit_meter") or {}
    return {
        "bits_sent": delivered,
        "bits_budget": budget,
        "budget_utilization": (delivered / budget) if budget else None,
        "reports_planned": planned,
        "reports_delivered": delivered,
        "reports_lost": lost,
        "metered_bits": meter.get("total_bits"),
    }


def _quantile(sorted_values: list[float], q: float) -> float:
    """Linear-interpolation quantile of an already-sorted list."""
    if not sorted_values:
        return 0.0
    if len(sorted_values) == 1:
        return sorted_values[0]
    position = q * (len(sorted_values) - 1)
    low = int(position)
    high = min(low + 1, len(sorted_values) - 1)
    fraction = position - low
    return sorted_values[low] * (1.0 - fraction) + sorted_values[high] * fraction


def _latency_summary(values: list[float]) -> dict[str, Any]:
    ordered = sorted(values)
    return {
        "count": len(ordered),
        "p50_s": _quantile(ordered, 0.50),
        "p95_s": _quantile(ordered, 0.95),
        "p99_s": _quantile(ordered, 0.99),
        "max_s": ordered[-1] if ordered else 0.0,
    }


def _wire_latency(artifact: RunArtifact) -> dict[str, Any] | None:
    """Uplink RTT and server queue delay from correlated served-round spans.

    ``serve.uplink_timings`` spans carry index-aligned per-uplink arrays
    (client ids, wall arrival times, queue delays) plus the wall time of the
    ANNOUNCE broadcast that solicited them; the arrival-minus-announce gap
    is the wire RTT of one uplink as the server saw it.  Remote
    ``fleet.uplink`` spans (ingested from telemetry, clock-skew aligned)
    give the same uplinks from the client side.  In-process artifacts have
    none of these spans and report no wire section.
    """
    rtts: list[float] = []
    queue_delays: list[float] = []
    client_sends: list[float] = []
    attempts = 0
    for record in artifact.spans():
        if record.name == "serve.uplink_timings":
            attrs = record.attributes
            announce = float(attrs.get("announce_s", 0.0))
            attempts += 1
            rtts.extend(float(arrival) - announce for arrival in attrs.get("arrival_s") or [])
            queue_delays.extend(float(delay) for delay in attrs.get("queue_delay_s") or [])
        elif record.name == "fleet.uplink" and record.attributes.get("remote"):
            client_sends.append(record.duration_s)
    if not (rtts or queue_delays or client_sends):
        return None
    return {
        "attempts": attempts,
        "uplink_rtt": _latency_summary(rtts),
        "queue_delay": _latency_summary(queue_delays),
        "client_send": _latency_summary(client_sends),
    }


def build_report(artifact: RunArtifact) -> dict[str, Any]:
    """Assemble the JSON-ready report all renderers share."""
    manifest = artifact.manifest
    profile = manifest.get("profile")
    phases = profile["phases"] if profile else _phases_from_events(artifact)
    counters = (manifest.get("metrics") or {}).get("counters", {})
    return {
        "label": manifest.get("label"),
        "seed": manifest.get("seed"),
        "git_revision": manifest.get("git_revision"),
        "format": manifest.get("format"),
        "config": manifest.get("config", {}),
        "events": manifest.get("events", {}),
        "skipped_lines": artifact.skipped_lines,
        "estimate": manifest.get("estimate"),
        "analysis": manifest.get("analysis"),
        "communication": _communication(manifest),
        "wire": _wire_latency(artifact),
        "privacy": _privacy_timeline(manifest),
        "recovery": _recovery_timeline(artifact),
        "phases": phases,
        "counters": {k: counters[k] for k in sorted(counters)},
        "health": manifest.get("health"),
        "alerts": artifact.alerts,
        "span_tree": format_span_tree(artifact.spans()),
    }


def _ms(seconds: float) -> str:
    return f"{seconds * 1e3:.3f}"


def _num(value: Any) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        return f"{value:.6g}"
    return str(value)


def render_markdown(report: dict[str, Any]) -> str:
    """Render the report dict as the human-facing Markdown document."""
    lines: list[str] = []
    out = lines.append
    out(f"# Run report: {report.get('label')}")
    out("")
    config = report.get("config", {})
    out(f"- seed: {report.get('seed')}")
    out(f"- git revision: {report.get('git_revision') or 'unknown'}")
    if config:
        pairs = "  ".join(f"{k}={config[k]}" for k in sorted(config))
        out(f"- config: {pairs}")
    events = report.get("events", {})
    out(
        f"- recorded: {events.get('spans', 0)} spans, {events.get('rounds', 0)} "
        f"round boundaries, {events.get('events', 0)} events"
    )
    if report.get("skipped_lines"):
        out(f"- WARNING: {report['skipped_lines']} malformed event line(s) skipped")
    out("")

    estimate = report.get("estimate")
    analysis = report.get("analysis") or {}
    out("## Estimate vs. Lemma 3.1")
    out("")
    if estimate:
        out("| quantity | value |")
        out("| --- | --- |")
        out(f"| estimate | {_num(estimate.get('value'))} |")
        out(f"| ground truth | {_num(analysis.get('truth'))} |")
        out(f"| observed error | {_num(analysis.get('observed_error'))} |")
        out(f"| predicted std (Lemma 3.1, realized counts) | {_num(analysis.get('predicted_std'))} |")
        out(f"| two-sigma bound | {_num(analysis.get('bound_2sigma'))} |")
        within = analysis.get("within_bound")
        out(f"| within bound | {'yes' if within else 'NO' if within is not None else '-'} |")
        out(f"| method | {estimate.get('method')} |")
        out(f"| cohort | {estimate.get('n_clients')} clients, {estimate.get('n_bits')} bits |")
    else:
        out("(no estimate recorded)")
    out("")

    comm = report.get("communication", {})
    out("## Communication budget")
    out("")
    out("| quantity | value |")
    out("| --- | --- |")
    out(f"| bits sent (delivered reports) | {_num(comm.get('bits_sent'))} |")
    out(f"| paper budget (1 bit x cohort) | {_num(comm.get('bits_budget'))} |")
    utilization = comm.get("budget_utilization")
    out(
        "| budget utilization | "
        + (f"{utilization * 100:.1f}% |" if utilization is not None else "- |")
    )
    out(f"| reports planned | {_num(comm.get('reports_planned'))} |")
    out(f"| reports lost | {_num(comm.get('reports_lost'))} |")
    out(f"| metered private bits | {_num(comm.get('metered_bits'))} |")
    out("")

    wire = report.get("wire")
    if wire:
        out("## Wire latency")
        out("")
        out(f"served attempts with uplink timings: {wire.get('attempts', 0)}")
        out("")
        out("| series | count | p50 ms | p95 ms | p99 ms | max ms |")
        out("| --- | --- | --- | --- | --- | --- |")
        for key, title in (
            ("uplink_rtt", "uplink RTT (announce -> arrival)"),
            ("queue_delay", "server queue delay (arrival -> drain)"),
            ("client_send", "client send (fleet.uplink span)"),
        ):
            series = wire.get(key) or {}
            out(
                f"| {title} | {series.get('count', 0)} | {_ms(series.get('p50_s', 0.0))} | "
                f"{_ms(series.get('p95_s', 0.0))} | {_ms(series.get('p99_s', 0.0))} | "
                f"{_ms(series.get('max_s', 0.0))} |"
            )
        out("")

    privacy = report.get("privacy", {})
    out("## Privacy spend")
    out("")
    out(
        f"epsilon spent: {_num(privacy.get('epsilon_spent'))}"
        + (
            f" of budget {_num(privacy.get('epsilon_budget'))}"
            if privacy.get("epsilon_budget") is not None
            else " (no budget set)"
        )
    )
    timeline = privacy.get("timeline", [])
    if timeline:
        out("")
        out("| step | epsilon | cumulative | note |")
        out("| --- | --- | --- | --- |")
        for entry in timeline:
            out(
                f"| {entry['step']} | {_num(entry['epsilon'])} | "
                f"{_num(entry['cumulative_epsilon'])} | {entry['note']} |"
            )
    out("")

    health = report.get("health")
    alerts = report.get("alerts", [])
    if health is not None or alerts:
        out("## Alerts")
        out("")
        if health is not None:
            active = health.get("active", [])
            out(
                f"health: {health.get('fired_total', 0)} fired, "
                f"{health.get('resolved_total', 0)} resolved, "
                f"{len(active)} still active over {health.get('evaluations', 0)} evaluation(s)"
            )
            for alert in active:
                out(
                    f"- ACTIVE [{alert.get('severity')}] {alert.get('rule')}: "
                    f"{alert.get('detail')}"
                )
            out("")
        if alerts:
            out("| t (s) | rule | severity | state | round | detail |")
            out("| --- | --- | --- | --- | --- | --- |")
            for alert in alerts:
                out(
                    f"| {float(alert.get('t_s', 0.0)):.3f} | {alert.get('rule')} | "
                    f"{alert.get('severity')} | {alert.get('state')} | "
                    f"{alert.get('round_index')} | {alert.get('detail')} |"
                )
        else:
            out("(no alert transitions recorded)")
        out("")

    recovery = report.get("recovery", [])
    out("## Retry / degradation timeline")
    out("")
    if recovery:
        out("| t (s) | round | attempt | outcome | detail |")
        out("| --- | --- | --- | --- | --- |")
        for entry in recovery:
            out(
                f"| {entry['t_s']:.3f} | {entry.get('round_index')} | "
                f"{entry.get('attempt')} | {entry['kind']} | {entry['detail']} |"
            )
    else:
        out("(no round attempts recorded)")
    out("")

    out("## Phase profile")
    out("")
    phases = report.get("phases", [])
    if phases:
        out("| phase | count | total ms | cpu ms | p50 ms | p95 ms | p99 ms |")
        out("| --- | --- | --- | --- | --- | --- | --- |")
        for phase in phases:
            out(
                f"| {phase['name']} | {phase['count']} | {_ms(phase['total_s'])} | "
                f"{_ms(phase.get('cpu_total_s', 0.0))} | {_ms(phase['p50_s'])} | "
                f"{_ms(phase['p95_s'])} | {_ms(phase['p99_s'])} |"
            )
    else:
        out("(no spans recorded)")
    out("")

    out("## Hot-path span tree")
    out("")
    out("```")
    out(report.get("span_tree") or "(empty)")
    out("```")
    out("")

    counters = report.get("counters", {})
    if counters:
        out("## Counters")
        out("")
        out("| counter | value |")
        out("| --- | --- |")
        for name, value in counters.items():
            out(f"| {name} | {_num(value)} |")
        out("")
    return "\n".join(lines)
