"""Process-wide metrics: counters, gauges, and fixed-bucket histograms.

A :class:`MetricsRegistry` is a thread-safe, name-addressed collection of
instruments::

    registry.counter("round_reports_lost_total").inc(37)
    registry.gauge("dropout_rate").set(0.12)
    registry.histogram("round_duration_s").observe(241.8)

``snapshot()`` freezes everything into one nested dict (JSON-ready), which
is what the JSONL trace exporter, the CLI ``trace`` subcommand, and the
benchmark harness all persist.

As with tracing, the library default is :data:`NULL_METRICS`: a registry
whose instruments are shared no-op singletons, so instrumented hot paths
cost one attribute lookup when metrics are disabled.
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from typing import Any, Iterable, Sequence

import numpy as np

from repro.exceptions import ConfigurationError

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullMetrics",
    "NULL_METRICS",
    "DEFAULT_DURATION_BUCKETS",
]

#: Default histogram buckets for round/report durations, in seconds.
DEFAULT_DURATION_BUCKETS = (0.1, 1.0, 10.0, 30.0, 60.0, 120.0, 300.0, 600.0, 1800.0)


class Counter:
    """A monotonically increasing value (floats allowed: epsilon is one)."""

    __slots__ = ("name", "help", "_value", "_lock")

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self._value = 0.0
        self._lock = threading.Lock()

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ConfigurationError(f"counter {self.name!r} cannot decrease (inc {amount})")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        return self._value


class Gauge:
    """A point-in-time value that can move in either direction."""

    __slots__ = ("name", "help", "_value", "_lock")

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self._value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        return self._value


class Histogram:
    """Fixed upper-bound buckets plus a running sum/count.

    ``buckets`` are inclusive upper bounds in ascending order; one implicit
    overflow bucket catches everything above the last bound.
    """

    __slots__ = ("name", "help", "buckets", "_counts", "_sum", "_count", "_lock")

    def __init__(self, name: str, buckets: Sequence[float], help: str = "") -> None:
        bounds = tuple(float(b) for b in buckets)
        if not bounds:
            raise ConfigurationError(f"histogram {name!r} needs >= 1 bucket")
        if any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise ConfigurationError(f"histogram {name!r} buckets must be strictly ascending")
        self.name = name
        self.help = help
        self.buckets = bounds
        self._counts = [0] * (len(bounds) + 1)
        self._sum = 0.0
        self._count = 0
        self._lock = threading.Lock()

    def observe(self, value: float, count: int = 1) -> None:
        """Record ``count`` observations of ``value`` (count>1 batches cheaply)."""
        if count < 1:
            raise ConfigurationError(f"histogram {self.name!r} observe count must be >= 1")
        idx = bisect_left(self.buckets, float(value))
        with self._lock:
            self._counts[idx] += count
            self._sum += float(value) * count
            self._count += count

    def observe_array(self, values: np.ndarray | Iterable[float]) -> None:
        """Vectorized :meth:`observe` for one value per array element."""
        arr = np.asarray(list(values) if not isinstance(values, np.ndarray) else values)
        if arr.size == 0:
            return
        arr = arr.astype(np.float64, copy=False).ravel()
        idx = np.searchsorted(np.array(self.buckets), arr, side="left")
        bucket_counts = np.bincount(idx, minlength=len(self.buckets) + 1)
        with self._lock:
            for i, c in enumerate(bucket_counts):
                self._counts[i] += int(c)
            self._sum += float(arr.sum())
            self._count += int(arr.size)

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    def quantile(self, q: float) -> float:
        """Bucket-interpolated quantile of everything observed so far.

        Linear interpolation within the bucket holding the ``q``-th ranked
        observation, with the first bucket's lower edge taken as 0.0 (these
        instruments measure non-negative quantities); observations in the
        implicit overflow bucket clamp to the last finite bound.  The value
        depends only on the bucket *counts*, never on the raw observations,
        so two runs whose observations land in the same buckets report
        identical quantiles -- what keeps recorded run reports stable.
        Returns 0.0 for an empty histogram.
        """
        if not 0.0 <= q <= 1.0:
            raise ConfigurationError(f"quantile q must be in [0, 1], got {q}")
        with self._lock:
            counts = list(self._counts)
            total = self._count
        return self._quantile_from_counts(self.buckets, counts, total, q)

    @staticmethod
    def _quantile_from_counts(
        buckets: Sequence[float], counts: Sequence[int], total: int, q: float
    ) -> float:
        if total == 0:
            return 0.0
        rank = q * total
        cumulative = 0
        for i, count in enumerate(counts):
            if count and (cumulative + count >= rank or i == len(counts) - 1):
                if i == len(buckets):
                    # Overflow bucket: no upper edge to interpolate toward.
                    return float(buckets[-1])
                upper = float(buckets[i])
                lower = 0.0 if i == 0 else float(buckets[i - 1])
                if i == 0 and upper <= 0.0:
                    return upper
                fraction = min(max((rank - cumulative) / count, 0.0), 1.0)
                return lower + fraction * (upper - lower)
            cumulative += count
        return float(buckets[-1])

    def to_dict(self) -> dict[str, Any]:
        with self._lock:
            counts = list(self._counts)
            total = self._count
            payload = {
                "buckets": list(self.buckets),
                "counts": counts,
                "sum": self._sum,
                "count": total,
            }
        for key, q in (("p50", 0.5), ("p95", 0.95), ("p99", 0.99)):
            payload[key] = self._quantile_from_counts(self.buckets, counts, total, q)
        return payload

    def merge_dict(self, payload: dict[str, Any]) -> None:
        """Fold another histogram's :meth:`to_dict` payload into this one.

        Bucket layouts must match exactly -- a merge across different
        layouts would silently misplace counts.
        """
        bounds = tuple(float(b) for b in payload.get("buckets", ()))
        if bounds != self.buckets:
            raise ConfigurationError(
                f"histogram {self.name!r} bucket mismatch on merge: "
                f"{bounds} vs {self.buckets}"
            )
        counts = payload.get("counts", [])
        if len(counts) != len(self._counts):
            raise ConfigurationError(
                f"histogram {self.name!r} expects {len(self._counts)} bucket counts, "
                f"got {len(counts)}"
            )
        with self._lock:
            for i, c in enumerate(counts):
                self._counts[i] += int(c)
            self._sum += float(payload.get("sum", 0.0))
            self._count += int(payload.get("count", 0))


class MetricsRegistry:
    """Name-addressed instruments with get-or-create semantics."""

    enabled = True

    def __init__(self) -> None:
        self._instruments: dict[str, Any] = {}
        self._lock = threading.Lock()

    def _get_or_create(self, name: str, kind: type, factory) -> Any:
        with self._lock:
            existing = self._instruments.get(name)
            if existing is not None:
                if not isinstance(existing, kind):
                    raise ConfigurationError(
                        f"metric {name!r} already registered as {type(existing).__name__}, "
                        f"not {kind.__name__}"
                    )
                return existing
            instrument = factory()
            self._instruments[name] = instrument
            return instrument

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get_or_create(name, Counter, lambda: Counter(name, help))

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get_or_create(name, Gauge, lambda: Gauge(name, help))

    def histogram(
        self, name: str, buckets: Sequence[float] = DEFAULT_DURATION_BUCKETS, help: str = ""
    ) -> Histogram:
        return self._get_or_create(name, Histogram, lambda: Histogram(name, buckets, help))

    def snapshot(self) -> dict[str, Any]:
        """Freeze every instrument into one nested, JSON-ready dict."""
        with self._lock:
            instruments = dict(self._instruments)
        out: dict[str, Any] = {"counters": {}, "gauges": {}, "histograms": {}}
        for name, instrument in sorted(instruments.items()):
            if isinstance(instrument, Counter):
                out["counters"][name] = instrument.value
            elif isinstance(instrument, Gauge):
                out["gauges"][name] = instrument.value
            else:
                out["histograms"][name] = instrument.to_dict()
        return out

    def merge_snapshot(self, snapshot: dict[str, Any]) -> None:
        """Fold another registry's :meth:`snapshot` into this one.

        The primitive behind worker-metric merging: a forked
        ``ParallelExecutor`` worker records into its own registry, returns
        the snapshot, and the parent folds it here.  Counters add, gauges
        take the incoming value (last write wins -- point-in-time values
        have no meaningful sum), histograms merge bucket-by-bucket (layouts
        must match; see :meth:`Histogram.merge_dict`).  Instruments missing
        on this side are created on demand.
        """
        for name, value in snapshot.get("counters", {}).items():
            if value:
                self.counter(name).inc(value)
            else:
                self.counter(name)
        for name, value in snapshot.get("gauges", {}).items():
            self.gauge(name).set(value)
        for name, payload in snapshot.get("histograms", {}).items():
            buckets = payload.get("buckets") or DEFAULT_DURATION_BUCKETS
            self.histogram(name, buckets=buckets).merge_dict(payload)

    def reset(self) -> None:
        """Drop every instrument (tests and repeated CLI runs)."""
        with self._lock:
            self._instruments.clear()


class _NullInstrument:
    """One object that satisfies the Counter/Gauge/Histogram call surface."""

    __slots__ = ()
    name = ""
    help = ""
    value = 0.0
    count = 0
    sum = 0.0
    buckets: tuple[float, ...] = ()

    def inc(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float, count: int = 1) -> None:
        pass

    def observe_array(self, values) -> None:
        pass

    def quantile(self, q: float) -> float:
        return 0.0

    def to_dict(self) -> dict[str, Any]:
        return {}


_NULL_INSTRUMENT = _NullInstrument()


class NullMetrics:
    """Disabled registry: every lookup returns the shared no-op instrument."""

    enabled = False

    def counter(self, name: str, help: str = "") -> _NullInstrument:
        return _NULL_INSTRUMENT

    def gauge(self, name: str, help: str = "") -> _NullInstrument:
        return _NULL_INSTRUMENT

    def histogram(
        self, name: str, buckets: Sequence[float] = DEFAULT_DURATION_BUCKETS, help: str = ""
    ) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def snapshot(self) -> dict[str, Any]:
        return {"counters": {}, "gauges": {}, "histograms": {}}

    def merge_snapshot(self, snapshot: dict[str, Any]) -> None:
        pass

    def reset(self) -> None:
        pass


#: The process-wide disabled registry (the library default).
NULL_METRICS = NullMetrics()
