"""Phase profiler: CPU time, peak allocations, and latency percentiles.

A :class:`PhaseProfiler` plugs into a :class:`~repro.observability.tracing.Tracer`
(``Tracer(exporters, profiler=profiler)``) and does two things:

* **Span enrichment** -- every span picks up a ``cpu_time_s`` attribute
  (:func:`time.process_time` delta) and, with ``trace_malloc=True``, a
  ``peak_alloc_kb`` attribute from :mod:`tracemalloc`, so exported records
  carry wall *and* CPU cost side by side.
* **Phase accumulation** -- finished spans are folded, by name, into
  fixed-bucket latency histograms, and :meth:`summary` reports per-phase
  p50/p95/p99 (via :meth:`Histogram.quantile`), call counts, and wall/CPU
  totals.  Because the percentiles depend only on bucket counts, runs that
  land the same spans in the same buckets report identical numbers.

The profiler is null-handle-free by design: when no profiler is installed
the tracer performs a single ``is not None`` check per span, and the
:data:`~repro.observability.tracing.NULL_TRACER` path is untouched.

Worker processes cannot share the parent's profiler (they fork with
observability disabled), so the trial-execution engine reports each chunk's
wall/CPU cost back to the parent, which folds it in via
:meth:`PhaseProfiler.merge_external`.

``tracemalloc`` caveat: per-span peaks use :func:`tracemalloc.reset_peak`,
so a parent span's figure can miss a peak that occurred before a nested
span began -- leaf-span numbers are exact, enclosing spans are lower
bounds.  Peak tracking also costs real time; keep it opt-in.
"""

from __future__ import annotations

import time
import tracemalloc
from dataclasses import dataclass
from typing import Any, Callable, Sequence

from repro.observability.metrics import Histogram
from repro.observability.tracing import SpanRecord

__all__ = ["DEFAULT_PHASE_BUCKETS", "PhaseProfiler", "PhaseSummary"]

#: Log-spaced latency buckets (seconds) for phase histograms: 10 us to 5 min.
DEFAULT_PHASE_BUCKETS = (
    1e-05,
    3e-05,
    1e-04,
    3e-04,
    1e-03,
    3e-03,
    1e-02,
    3e-02,
    0.1,
    0.3,
    1.0,
    3.0,
    10.0,
    30.0,
    60.0,
    300.0,
)


@dataclass(frozen=True)
class PhaseSummary:
    """Aggregated cost of one span name (a "phase") across a run."""

    name: str
    count: int
    total_s: float
    cpu_total_s: float
    p50_s: float
    p95_s: float
    p99_s: float
    peak_alloc_kb: float | None = None

    def to_dict(self) -> dict[str, Any]:
        payload: dict[str, Any] = {
            "name": self.name,
            "count": self.count,
            "total_s": self.total_s,
            "cpu_total_s": self.cpu_total_s,
            "p50_s": self.p50_s,
            "p95_s": self.p95_s,
            "p99_s": self.p99_s,
        }
        if self.peak_alloc_kb is not None:
            payload["peak_alloc_kb"] = self.peak_alloc_kb
        return payload


class PhaseProfiler:
    """Enrich spans with CPU/allocation cost and summarize phases.

    Parameters
    ----------
    trace_malloc:
        Track per-span peak allocation with :mod:`tracemalloc` (opt-in; it
        slows allocation-heavy code noticeably).
    buckets:
        Latency-histogram buckets, seconds (default
        :data:`DEFAULT_PHASE_BUCKETS`).
    cpu_clock:
        CPU clock (default :func:`time.process_time`).  Pass the tracer's
        :class:`~repro.observability.tracing.SimClock` for deterministic
        recorded runs.
    """

    def __init__(
        self,
        trace_malloc: bool = False,
        buckets: Sequence[float] = DEFAULT_PHASE_BUCKETS,
        cpu_clock: Callable[[], float] | None = None,
    ) -> None:
        self.trace_malloc = bool(trace_malloc)
        self.buckets = tuple(float(b) for b in buckets)
        self._cpu = cpu_clock if cpu_clock is not None else time.process_time
        self._durations: dict[str, Histogram] = {}
        self._cpu_totals: dict[str, float] = {}
        self._wall_totals: dict[str, float] = {}
        self._counts: dict[str, int] = {}
        self._peaks: dict[str, float] = {}
        self._started_tracemalloc = False

    # -- span hooks (called by Tracer/Span) ----------------------------
    def begin(self) -> tuple[float, float | None]:
        """Open one span's cost window; returns the token ``end`` consumes."""
        baseline: float | None = None
        if self.trace_malloc:
            if not tracemalloc.is_tracing():
                tracemalloc.start()
                self._started_tracemalloc = True
            tracemalloc.reset_peak()
            baseline = float(tracemalloc.get_traced_memory()[0])
        return (self._cpu(), baseline)

    def end(self, token: tuple[float, float | None]) -> dict[str, Any]:
        """Close the window; returns attributes to merge into the span."""
        attributes: dict[str, Any] = {"cpu_time_s": self._cpu() - token[0]}
        if token[1] is not None and tracemalloc.is_tracing():
            peak = float(tracemalloc.get_traced_memory()[1])
            attributes["peak_alloc_kb"] = max(0.0, (peak - token[1]) / 1024.0)
        return attributes

    def observe(self, record: SpanRecord) -> None:
        """Fold one finished span into its phase's accumulators."""
        cpu = record.attributes.get("cpu_time_s", 0.0)
        peak = record.attributes.get("peak_alloc_kb")
        self._fold(record.name, record.duration_s, float(cpu), peak)

    def merge_external(self, name: str, duration_s: float, cpu_s: float = 0.0) -> None:
        """Fold in work measured outside this process (forked workers)."""
        self._fold(name, float(duration_s), float(cpu_s), None)

    def _fold(
        self, name: str, duration_s: float, cpu_s: float, peak_kb: float | None
    ) -> None:
        hist = self._durations.get(name)
        if hist is None:
            hist = self._durations[name] = Histogram(name, self.buckets)
            self._cpu_totals[name] = 0.0
            self._wall_totals[name] = 0.0
            self._counts[name] = 0
        hist.observe(duration_s)
        self._cpu_totals[name] += cpu_s
        self._wall_totals[name] += duration_s
        self._counts[name] += 1
        if peak_kb is not None:
            self._peaks[name] = max(self._peaks.get(name, 0.0), float(peak_kb))

    # -- reporting ------------------------------------------------------
    def phases(self) -> list[PhaseSummary]:
        """Per-phase summaries, costliest (by total wall time) first."""
        summaries = [
            PhaseSummary(
                name=name,
                count=self._counts[name],
                total_s=self._wall_totals[name],
                cpu_total_s=self._cpu_totals[name],
                p50_s=hist.quantile(0.5),
                p95_s=hist.quantile(0.95),
                p99_s=hist.quantile(0.99),
                peak_alloc_kb=self._peaks.get(name),
            )
            for name, hist in self._durations.items()
        ]
        summaries.sort(key=lambda s: (-s.total_s, s.name))
        return summaries

    def summary(self) -> dict[str, Any]:
        """JSON-ready profile: the flight-recorder manifest's ``profile``."""
        return {
            "trace_malloc": self.trace_malloc,
            "buckets_s": list(self.buckets),
            "phases": [phase.to_dict() for phase in self.phases()],
        }

    def stop(self) -> None:
        """Stop tracemalloc if this profiler started it."""
        if self._started_tracemalloc and tracemalloc.is_tracing():
            tracemalloc.stop()
            self._started_tracemalloc = False
