"""Span exporters: in-memory (tests), stdout (humans), JSON lines (tools).

Every exporter implements ``export(record: SpanRecord)``; the JSONL
exporter additionally accepts metrics snapshots, so one ``.jsonl`` file can
carry a full round trace *and* its closing metrics state::

    {"type": "span", "name": "federated.round", ...}
    {"type": "span", "name": "federated.query", ...}
    {"type": "metrics", "metrics": {"counters": {...}, ...}}

Spans arrive in completion order (children before parents);
:func:`format_span_tree` rebuilds the parent/child hierarchy for display.
"""

from __future__ import annotations

import json
import sys
import threading
from pathlib import Path
from typing import Any, IO, Iterable, Mapping

from repro.observability.tracing import SpanRecord

__all__ = [
    "InMemoryExporter",
    "ConsoleExporter",
    "JsonLinesExporter",
    "format_span_tree",
]


class InMemoryExporter:
    """Collects records in a list -- the assertion surface for tests."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.records: list[SpanRecord] = []

    def export(self, record: SpanRecord) -> None:
        with self._lock:
            self.records.append(record)

    def names(self) -> list[str]:
        """Span names in completion order."""
        return [r.name for r in self.records]

    def find(self, name: str) -> list[SpanRecord]:
        return [r for r in self.records if r.name == name]

    def children_of(self, span_id: int) -> list[SpanRecord]:
        return [r for r in self.records if r.parent_id == span_id]

    def roots(self) -> list[SpanRecord]:
        return [r for r in self.records if r.parent_id is None]

    def clear(self) -> None:
        with self._lock:
            self.records.clear()


class ConsoleExporter:
    """Prints one line per finished span (duration, name, attributes)."""

    def __init__(self, stream: IO[str] | None = None) -> None:
        self._stream = stream if stream is not None else sys.stdout

    def export(self, record: SpanRecord) -> None:
        attrs = " ".join(f"{k}={v}" for k, v in record.attributes.items())
        status = "" if record.status == "ok" else f" [{record.status}]"
        line = f"[trace] {record.duration_s * 1e3:9.3f} ms  {record.name}{status}"
        if attrs:
            line += f"  {attrs}"
        print(line, file=self._stream)


class JsonLinesExporter:
    """Writes one JSON object per record to a ``.jsonl`` file.

    Parameters
    ----------
    path:
        Destination file; parent directories are created.
    flush_every:
        Flush the OS buffer after this many written lines (default 1: every
        line reaches disk immediately, so a crashed run keeps its event-log
        tail).  ``0`` restores the historical buffer-until-close behaviour.
    append:
        Open the file in append mode instead of truncating, so a resumed
        run extends an earlier event log rather than erasing it.
    """

    def __init__(self, path: str | Path, flush_every: int = 1, append: bool = False) -> None:
        if flush_every < 0:
            raise ValueError(f"flush_every must be >= 0, got {flush_every}")
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._lock = threading.Lock()
        self._handle: IO[str] | None = self.path.open("a" if append else "w")
        self._flush_every = int(flush_every)
        self._unflushed = 0

    def export(self, record: SpanRecord) -> None:
        self._write(record.to_dict())

    def export_metrics(self, snapshot: Mapping[str, Any]) -> None:
        """Append a metrics-snapshot line alongside the spans."""
        self._write({"type": "metrics", "metrics": dict(snapshot)})

    def write_line(self, payload: Mapping[str, Any]) -> None:
        """Append one arbitrary JSON-ready object (flight-recorder events)."""
        self._write(payload)

    def _write(self, payload: Mapping[str, Any]) -> None:
        line = json.dumps(payload, default=str)
        with self._lock:
            if self._handle is None:
                raise ValueError(f"exporter for {self.path} is closed")
            self._handle.write(line + "\n")
            self._unflushed += 1
            if self._flush_every and self._unflushed >= self._flush_every:
                self._handle.flush()
                self._unflushed = 0

    def close(self) -> None:
        with self._lock:
            if self._handle is not None:
                self._handle.close()
                self._handle = None

    def __enter__(self) -> "JsonLinesExporter":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False


def format_span_tree(records: Iterable[SpanRecord]) -> str:
    """Render finished spans as an indented tree (roots in start order).

    A span whose ``parent_id`` is not among ``records`` -- because an
    exporter was attached mid-run, or the caller filtered the stream -- is
    rendered as a synthetic root rather than silently dropped, interleaved
    with the true roots in start-time order.
    """
    records = list(records)
    known_ids = {record.span_id for record in records}
    by_parent: dict[int | None, list[SpanRecord]] = {}
    for record in records:
        parent = record.parent_id
        if parent is not None and parent not in known_ids:
            parent = None
        by_parent.setdefault(parent, []).append(record)
    for siblings in by_parent.values():
        siblings.sort(key=lambda r: r.start_time_s)

    lines: list[str] = []

    def walk(record: SpanRecord, depth: int) -> None:
        attrs = " ".join(f"{k}={v}" for k, v in record.attributes.items())
        status = "" if record.status == "ok" else f" [{record.status}]"
        line = f"{'  ' * depth}{record.name}{status}  ({record.duration_s * 1e3:.3f} ms)"
        if attrs:
            line += f"  {attrs}"
        lines.append(line)
        for child in by_parent.get(record.span_id, []):
            walk(child, depth + 1)

    for root in by_parent.get(None, []):
        walk(root, 0)
    return "\n".join(lines)
