"""Campaign health plane: declarative SLO/alert rules over round samples.

Long campaigns are *services*, and services need health signals while they
run, not just post-hoc reports.  A :class:`HealthMonitor` evaluates a set of
declarative :class:`HealthRule` objects against a stream of
:class:`HealthSample` observations -- one per round attempt (plus optional
estimate/campaign/streaming samples) -- and turns threshold crossings into
**alerts with fire/resolve semantics**: a rule that starts failing emits one
``fired`` event, stays silently active while it keeps failing, and emits one
``resolved`` event when the condition clears.  Every transition is appended
to the monitor's event list and, when a sink is configured, to an
``alerts.jsonl`` file next to the flight-recorder artifact.

Two wirings exist (use one per run, not both, or rounds evaluate twice):

* **Span-driven** -- the monitor is a tracer exporter: each closing
  ``federated.round`` span becomes a round sample whose time is the span's
  end time, so ``--sim-clock`` runs produce byte-identical ``alerts.jsonl``
  across same-seed runs.  This is what ``repro.cli trace --record`` does.
* **Direct** -- ``FederatedMeanQuery(health=...)``,
  ``MonitoringCampaign(health=...)``, and ``StreamingAggregator(health=...)``
  call the ``observe_*`` hooks, timing samples on the *simulated* round
  durations, so untraced campaign loops get the same watchdog.

The built-in rule set (:func:`default_rules`) covers the SLOs the ROADMAP's
scaling arc needs visible: epsilon-budget burn rate vs. schedule, retry
storms, quorum degradation, dropout-rate clipping, encoding-range shifts
from the :class:`~repro.core.monitor.HighBitMonitor`, and
estimate-vs-Lemma-3.1 variance drift scored with the
:mod:`repro.verification.statcheck` normal tail.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterable, Mapping, Sequence

from repro.exceptions import ConfigurationError
from repro.observability.exporters import JsonLinesExporter
from repro.observability.tracing import SpanRecord

__all__ = [
    "ALERTS_FILENAME",
    "SEVERITIES",
    "AlertEvent",
    "DropoutClipRule",
    "EpsilonBurnRateRule",
    "HealthMonitor",
    "HealthRule",
    "HealthSample",
    "MonitorShiftRule",
    "QuorumDegradationRule",
    "Reading",
    "RetryStormRule",
    "ShardFailureRule",
    "StragglerSkewRule",
    "VarianceDriftRule",
    "default_rules",
]

#: Alert transition log written next to a flight-recorder artifact.
ALERTS_FILENAME = "alerts.jsonl"

#: Valid rule severities, mildest first.
SEVERITIES = ("info", "warning", "critical")


@dataclass(frozen=True)
class HealthSample:
    """One health observation: a round attempt, estimate, or snapshot.

    ``kind`` is one of ``"round"`` (a round attempt completed or failed),
    ``"estimate"`` (an end-of-run estimate with its Lemma 3.1 analysis),
    ``"campaign"`` (one campaign round's drift-monitor outcome), or
    ``"streaming"`` (a streaming-aggregator snapshot).  Rules ignore kinds
    they do not understand.  ``counters`` is the metrics-registry counter
    snapshot at sample time (empty when no registry is installed).
    """

    kind: str
    t_s: float
    round_index: int | None = None
    attempt: int | None = None
    planned: int | None = None
    survived: int | None = None
    failed: bool = False
    degraded: bool = False
    epsilon_spent: float | None = None
    observed_error: float | None = None
    predicted_std: float | None = None
    shift: bool = False
    evidence_ratio: float | None = None
    uplink_median_s: float | None = None
    uplink_slow_decile_s: float | None = None
    counters: Mapping[str, float] = field(default_factory=dict)


@dataclass(frozen=True)
class Reading:
    """One rule evaluation: firing, clear, or no opinion (``firing=None``)."""

    firing: bool | None
    value: float | None = None
    detail: str = ""


class HealthRule:
    """One declarative SLO: a named, severity-tagged condition over samples.

    Subclasses implement :meth:`evaluate`; returning ``Reading(None)``
    leaves the rule's fired/resolved state untouched (insufficient data or
    an irrelevant sample kind).  Rules may keep internal window state; the
    monitor evaluates them in registration order, one pass per sample.
    """

    name: str = "rule"
    severity: str = "warning"
    description: str = ""

    def evaluate(self, sample: HealthSample) -> Reading:
        raise NotImplementedError


@dataclass(frozen=True)
class AlertEvent:
    """One fire/resolve transition, as persisted to ``alerts.jsonl``."""

    rule: str
    severity: str
    state: str  # "fired" | "resolved"
    t_s: float
    round_index: int | None
    value: float | None
    detail: str

    def to_dict(self) -> dict[str, Any]:
        return {
            "type": "alert",
            "rule": self.rule,
            "severity": self.severity,
            "state": self.state,
            "t_s": self.t_s,
            "round_index": self.round_index,
            "value": self.value,
            "detail": self.detail,
        }


# ----------------------------------------------------------------------
# Built-in rules
# ----------------------------------------------------------------------


class EpsilonBurnRateRule(HealthRule):
    """Cumulative epsilon spend is ahead of its schedule.

    With a budget and a planned round count, each completed round is allowed
    ``budget / planned_rounds`` of spend; the rule fires when the observed
    cumulative spend exceeds ``headroom`` times the allowance earned so far
    (and resolves if later on-schedule rounds catch the allowance back up).
    Without ``planned_rounds`` the whole budget is the allowance, so the
    rule degenerates to "spent more than ``headroom * budget``".
    """

    name = "epsilon-burn-rate"
    severity = "critical"
    description = "epsilon spend ahead of the budgeted burn schedule"

    def __init__(
        self,
        budget: float,
        planned_rounds: int | None = None,
        headroom: float = 1.05,
    ) -> None:
        if budget <= 0:
            raise ConfigurationError(f"epsilon budget must be positive, got {budget}")
        if planned_rounds is not None and planned_rounds < 1:
            raise ConfigurationError(f"planned_rounds must be >= 1, got {planned_rounds}")
        if headroom < 1.0:
            raise ConfigurationError(f"headroom must be >= 1.0, got {headroom}")
        self.budget = float(budget)
        self.planned_rounds = planned_rounds
        self.headroom = float(headroom)
        self._completed = 0

    def evaluate(self, sample: HealthSample) -> Reading:
        if sample.kind != "round":
            return Reading(None)
        if not sample.failed:
            self._completed += 1
        spent = sample.epsilon_spent
        if spent is None:
            spent = sample.counters.get("privacy_epsilon_spent_total")
        if spent is None:
            return Reading(None)
        if self.planned_rounds is None:
            allowance = self.budget
        else:
            allowance = self.budget * min(1.0, self._completed / self.planned_rounds)
        firing = spent > self.headroom * allowance + 1e-12
        return Reading(
            firing,
            value=float(spent),
            detail=(
                f"spent {spent:.4g} eps vs allowance {allowance:.4g} "
                f"after {self._completed} completed round(s)"
            ),
        )


class RetryStormRule(HealthRule):
    """Too many retried attempts inside the trailing attempt window.

    Each round sample with ``attempt > 1`` marks one retry; the rule fires
    when at least ``threshold`` marks land inside the last ``window``
    attempts, and resolves once enough clean attempts push them out.
    """

    name = "retry-storm"
    severity = "warning"
    description = "retried round attempts clustered inside the window"

    def __init__(self, window: int = 5, threshold: int = 2) -> None:
        if window < 1:
            raise ConfigurationError(f"window must be >= 1, got {window}")
        if threshold < 1:
            raise ConfigurationError(f"threshold must be >= 1, got {threshold}")
        self.window = window
        self.threshold = threshold
        self._recent: deque[int] = deque(maxlen=window)

    def evaluate(self, sample: HealthSample) -> Reading:
        if sample.kind != "round":
            return Reading(None)
        self._recent.append(1 if (sample.attempt or 1) > 1 else 0)
        retries = sum(self._recent)
        return Reading(
            retries >= self.threshold,
            value=float(retries),
            detail=f"{retries} retried attempt(s) in the last {len(self._recent)}",
        )


class QuorumDegradationRule(HealthRule):
    """Failed or degraded rounds dominate the trailing window.

    Counts round attempts that failed outright or completed degraded (and
    streaming snapshots flagged under-evidenced) over the last ``window``
    samples; fires when the rate reaches ``max_rate`` with a full window.
    """

    name = "quorum-degradation"
    severity = "warning"
    description = "failed/degraded rounds exceed the tolerated rate"

    def __init__(self, window: int = 5, max_rate: float = 0.4) -> None:
        if window < 1:
            raise ConfigurationError(f"window must be >= 1, got {window}")
        if not 0.0 < max_rate <= 1.0:
            raise ConfigurationError(f"max_rate must be in (0, 1], got {max_rate}")
        self.window = window
        self.max_rate = max_rate
        self._recent: deque[int] = deque(maxlen=window)

    def evaluate(self, sample: HealthSample) -> Reading:
        if sample.kind not in ("round", "streaming"):
            return Reading(None)
        self._recent.append(1 if (sample.failed or sample.degraded) else 0)
        if len(self._recent) < self.window:
            return Reading(None)
        rate = sum(self._recent) / len(self._recent)
        return Reading(
            rate >= self.max_rate,
            value=rate,
            detail=f"{sum(self._recent)}/{len(self._recent)} recent rounds failed or degraded",
        )


class DropoutClipRule(HealthRule):
    """Dropout-rate clips observed inside the trailing window.

    Watches the ``dropout_rate_clips_total`` counter: a clip means a fault
    override pushed the effective dropout rate past the model's ceiling --
    the statistical weather is worse than anything the plan budgeted for.
    """

    name = "dropout-clip"
    severity = "warning"
    description = "dropout rate clipped at the model ceiling"

    def __init__(self, window: int = 5, threshold: int = 1) -> None:
        if window < 1:
            raise ConfigurationError(f"window must be >= 1, got {window}")
        if threshold < 1:
            raise ConfigurationError(f"threshold must be >= 1, got {threshold}")
        self.window = window
        self.threshold = threshold
        self._recent: deque[float] = deque(maxlen=window + 1)

    def evaluate(self, sample: HealthSample) -> Reading:
        if sample.kind != "round":
            return Reading(None)
        clips = sample.counters.get("dropout_rate_clips_total")
        if clips is None:
            return Reading(None)
        self._recent.append(float(clips))
        delta = self._recent[-1] - self._recent[0]
        return Reading(
            delta >= self.threshold,
            value=delta,
            detail=f"{delta:.0f} dropout-rate clip(s) in the last {len(self._recent) - 1} round(s)",
        )


class ShardFailureRule(HealthRule):
    """Secure-aggregation shards failed inside the trailing window.

    Watches the ``secure_shard_failures_total`` counter: a failed shard
    means a masking session fell below its recovery threshold and its
    clients were excluded from the round -- the round *degraded* rather
    than aborting, and this rule is how that containment stays visible.
    Resolves once ``window`` clean rounds push the failures out.
    """

    name = "shard-failure"
    severity = "warning"
    description = "secure-aggregation shard(s) below recovery threshold"

    def __init__(self, window: int = 5, threshold: int = 1) -> None:
        if window < 1:
            raise ConfigurationError(f"window must be >= 1, got {window}")
        if threshold < 1:
            raise ConfigurationError(f"threshold must be >= 1, got {threshold}")
        self.window = window
        self.threshold = threshold
        self._recent: deque[float] = deque(maxlen=window + 1)

    def evaluate(self, sample: HealthSample) -> Reading:
        if sample.kind != "round":
            return Reading(None)
        failures = sample.counters.get("secure_shard_failures_total")
        if failures is None:
            # The failures counter springs into existence at its first
            # increment; a clean secure round before that still counts as
            # an explicit zero baseline, or the first failure's delta
            # would be invisible to the window.
            if sample.counters.get("secure_shards_total") is None:
                return Reading(None)
            failures = 0.0
        self._recent.append(float(failures))
        delta = self._recent[-1] - self._recent[0]
        return Reading(
            delta >= self.threshold,
            value=delta,
            detail=(
                f"{delta:.0f} shard failure(s) in the last "
                f"{len(self._recent) - 1} round(s)"
            ),
        )


class StragglerSkewRule(HealthRule):
    """Slowest-decile uplink latency diverged from the round median.

    Served rounds stamp ``uplink_median_s`` / ``uplink_slow_decile_s`` on
    their round span (derived from per-uplink arrival times relative to the
    ANNOUNCE broadcast).  When the slow decile runs more than ``max_ratio``
    times the median, a straggling cohort is dragging the round's tail --
    the collect deadline is doing the cohort's waiting.  Samples without
    uplink timings (in-process rounds, telemetry off) are no opinion, and
    a degenerate median below ``floor_s`` is ignored rather than divided by.
    """

    name = "straggler-skew"
    severity = "warning"
    description = "slowest-decile uplink latency diverged from the median"

    def __init__(self, max_ratio: float = 4.0, floor_s: float = 1e-6) -> None:
        if max_ratio <= 1.0:
            raise ConfigurationError(f"max_ratio must be > 1.0, got {max_ratio}")
        if floor_s <= 0.0:
            raise ConfigurationError(f"floor_s must be positive, got {floor_s}")
        self.max_ratio = float(max_ratio)
        self.floor_s = float(floor_s)

    def evaluate(self, sample: HealthSample) -> Reading:
        if sample.kind != "round":
            return Reading(None)
        median = sample.uplink_median_s
        slow = sample.uplink_slow_decile_s
        if median is None or slow is None or median < self.floor_s:
            return Reading(None)
        ratio = float(slow) / float(median)
        return Reading(
            ratio > self.max_ratio,
            value=ratio,
            detail=(
                f"slow-decile uplink {slow * 1e3:.3g} ms is {ratio:.2f}x "
                f"the median {median * 1e3:.3g} ms (threshold {self.max_ratio:g}x)"
            ),
        )


class MonitorShiftRule(HealthRule):
    """The occupied bit range shifted (heavy tail / distribution change).

    Fires on a campaign sample flagged by the
    :class:`~repro.core.monitor.HighBitMonitor`, or on a round sample whose
    ``monitor_shifts_total`` counter advanced; resolves on the next quiet
    sample.
    """

    name = "monitor-shift"
    severity = "info"
    description = "encoding-range (top occupied bit) shift detected"

    def __init__(self) -> None:
        self._last_total: float | None = None

    def evaluate(self, sample: HealthSample) -> Reading:
        if sample.kind == "campaign":
            return Reading(sample.shift, detail="HighBitMonitor flagged a bit-range shift")
        if sample.kind != "round":
            return Reading(None)
        total = sample.counters.get("monitor_shifts_total")
        if total is None:
            return Reading(None)
        previous, self._last_total = self._last_total, float(total)
        if previous is None:
            return Reading(float(total) > 0, value=float(total))
        return Reading(
            float(total) > previous,
            value=float(total),
            detail=f"monitor_shifts_total advanced to {total:.0f}",
        )


class VarianceDriftRule(HealthRule):
    """The observed estimate error is inconsistent with Lemma 3.1.

    Standardizes the observed error by the lemma's predicted standard
    deviation (evaluated at realized counts) and scores the two-sided
    normal tail with :func:`repro.verification.statcheck.normal_sf`; fires
    when the p-value drops below ``alpha``.  A correct pipeline trips this
    with probability ``alpha`` per estimate, so the default is far out in
    the tail -- a fire means the variance model and reality have drifted
    apart (a wrong debias constant, an unaccounted failure mode).
    """

    name = "variance-drift"
    severity = "critical"
    description = "estimate error outside the Lemma 3.1 variance model"

    def __init__(self, alpha: float = 1e-4) -> None:
        if not 0.0 < alpha < 1.0:
            raise ConfigurationError(f"alpha must be in (0, 1), got {alpha}")
        self.alpha = alpha

    def evaluate(self, sample: HealthSample) -> Reading:
        if sample.kind != "estimate":
            return Reading(None)
        error, std = sample.observed_error, sample.predicted_std
        if error is None or std is None or std <= 0.0 or std != std or std == float("inf"):
            return Reading(None)
        # Lazy import: repro.verification pulls in estimator modules that
        # import this package; at evaluate time everything is initialized.
        from repro.verification.statcheck import normal_sf

        z = float(error) / float(std)
        p = min(1.0, 2.0 * normal_sf(z))
        return Reading(
            p < self.alpha,
            value=z,
            detail=f"|z| = {z:.3f} (two-sided p = {p:.3g}) vs alpha = {self.alpha:g}",
        )


def default_rules(
    epsilon_budget: float | None = None,
    planned_rounds: int | None = None,
    window: int = 5,
    retry_threshold: int = 2,
    degradation_rate: float = 0.4,
    drift_alpha: float = 1e-4,
    straggler_ratio: float = 4.0,
) -> list[HealthRule]:
    """The standard SLO set; the burn-rate rule needs a budget to exist."""
    rules: list[HealthRule] = [
        RetryStormRule(window=window, threshold=retry_threshold),
        QuorumDegradationRule(window=window, max_rate=degradation_rate),
        DropoutClipRule(window=window),
        ShardFailureRule(window=window),
        MonitorShiftRule(),
        VarianceDriftRule(alpha=drift_alpha),
        StragglerSkewRule(max_ratio=straggler_ratio),
    ]
    if epsilon_budget is not None:
        rules.insert(0, EpsilonBurnRateRule(epsilon_budget, planned_rounds=planned_rounds))
    return rules


# ----------------------------------------------------------------------
# The monitor
# ----------------------------------------------------------------------


class HealthMonitor:
    """Evaluate SLO rules per sample and record fire/resolve transitions.

    Parameters
    ----------
    rules:
        The rule set (default :func:`default_rules` with no budget).  Rule
        names must be unique -- they key the fire/resolve state.
    metrics:
        Optional :class:`~repro.observability.metrics.MetricsRegistry`
        snapshotted into every span-driven sample's ``counters``.  ``None``
        falls back to the process-wide registry at sample time.
    sink:
        Where alert transitions are persisted: a path (an ``alerts.jsonl``
        file, opened with line-level flushing like the flight recorder's
        event log) or any object with a ``write_line(dict)`` method.
        ``None`` keeps transitions in memory only.
    round_span:
        Span name treated as a round-attempt boundary when the monitor is
        installed as a tracer exporter.
    """

    def __init__(
        self,
        rules: Sequence[HealthRule] | None = None,
        metrics: Any = None,
        sink: str | Path | Any | None = None,
        round_span: str = "federated.round",
    ) -> None:
        self.rules = list(rules) if rules is not None else default_rules()
        names = [rule.name for rule in self.rules]
        if len(set(names)) != len(names):
            raise ConfigurationError(f"health rule names must be unique, got {names}")
        for rule in self.rules:
            if rule.severity not in SEVERITIES:
                raise ConfigurationError(
                    f"rule {rule.name!r} severity must be one of {SEVERITIES}, "
                    f"got {rule.severity!r}"
                )
        self._metrics = metrics
        self._owns_sink = isinstance(sink, (str, Path))
        self._sink = JsonLinesExporter(sink, flush_every=1) if self._owns_sink else sink
        self._round_span = round_span
        self._active: dict[str, AlertEvent] = {}
        self._fired: dict[str, int] = {}
        self._resolved: dict[str, int] = {}
        self._events: list[AlertEvent] = []
        self._evaluations = 0
        self._t = 0.0

    # -- sample construction -------------------------------------------
    def _counters(self) -> dict[str, float]:
        registry = self._metrics
        if registry is None:
            from repro.observability import get_metrics

            registry = get_metrics()
        if not getattr(registry, "enabled", False):
            return {}
        return dict(registry.snapshot().get("counters", {}))

    def _advance(self, t_s: float | None, duration_s: float) -> float:
        if t_s is not None:
            self._t = max(self._t, float(t_s))
        else:
            self._t += float(duration_s)
        return self._t

    # -- exporter protocol (span-driven wiring) ------------------------
    def export(self, record: SpanRecord) -> None:
        """Evaluate one round sample per closing round span."""
        if record.name != self._round_span:
            return
        attrs = record.attributes
        sample = HealthSample(
            kind="round",
            t_s=self._advance(record.start_time_s + record.duration_s, 0.0),
            round_index=attrs.get("round_index"),
            attempt=attrs.get("attempt"),
            planned=attrs.get("planned_clients"),
            survived=attrs.get("surviving_clients"),
            failed=bool(attrs.get("failed")),
            degraded=bool(attrs.get("degraded")),
            uplink_median_s=attrs.get("uplink_median_s"),
            uplink_slow_decile_s=attrs.get("uplink_slow_decile_s"),
            counters=self._counters(),
        )
        self.evaluate(sample)

    # -- direct wiring (server / campaign / streaming hooks) -----------
    def observe_round(
        self,
        round_index: int,
        attempt: int,
        planned: int,
        survived: int,
        failed: bool = False,
        degraded: bool = False,
        duration_s: float = 0.0,
        epsilon_spent: float | None = None,
        t_s: float | None = None,
    ) -> list[AlertEvent]:
        """One round attempt from :class:`FederatedMeanQuery` (no tracer needed)."""
        return self.evaluate(
            HealthSample(
                kind="round",
                t_s=self._advance(t_s, duration_s),
                round_index=round_index,
                attempt=attempt,
                planned=planned,
                survived=survived,
                failed=failed,
                degraded=degraded,
                epsilon_spent=epsilon_spent,
                counters=self._counters(),
            )
        )

    def observe_estimate(
        self, analysis: Mapping[str, Any], t_s: float | None = None
    ) -> list[AlertEvent]:
        """An end-of-run estimate with its Lemma 3.1 analysis dict."""
        return self.evaluate(
            HealthSample(
                kind="estimate",
                t_s=self._advance(t_s, 0.0),
                observed_error=analysis.get("observed_error"),
                predicted_std=analysis.get("predicted_std"),
                counters=self._counters(),
            )
        )

    def observe_campaign_round(
        self,
        round_index: int,
        shift: bool = False,
        degraded: bool = False,
        t_s: float | None = None,
    ) -> list[AlertEvent]:
        """One campaign round's drift-monitor outcome."""
        return self.evaluate(
            HealthSample(
                kind="campaign",
                t_s=self._advance(t_s, 0.0),
                round_index=round_index,
                shift=shift,
                degraded=degraded,
                counters=self._counters(),
            )
        )

    def observe_streaming(
        self,
        reports: int,
        degraded: bool = False,
        evidence_ratio: float | None = None,
        t_s: float | None = None,
    ) -> list[AlertEvent]:
        """One streaming-aggregator snapshot."""
        return self.evaluate(
            HealthSample(
                kind="streaming",
                t_s=self._advance(t_s, 0.0),
                survived=reports,
                degraded=degraded,
                evidence_ratio=evidence_ratio,
                counters=self._counters(),
            )
        )

    # -- the engine -----------------------------------------------------
    def evaluate(self, sample: HealthSample) -> list[AlertEvent]:
        """Run every rule against ``sample``; returns the transitions."""
        self._evaluations += 1
        transitions: list[AlertEvent] = []
        for rule in self.rules:
            reading = rule.evaluate(sample)
            if reading.firing is None:
                continue
            active = rule.name in self._active
            if reading.firing and not active:
                event = self._transition(rule, "fired", sample, reading)
                self._active[rule.name] = event
                self._fired[rule.name] = self._fired.get(rule.name, 0) + 1
                transitions.append(event)
            elif not reading.firing and active:
                event = self._transition(rule, "resolved", sample, reading)
                del self._active[rule.name]
                self._resolved[rule.name] = self._resolved.get(rule.name, 0) + 1
                transitions.append(event)
        return transitions

    def _transition(
        self, rule: HealthRule, state: str, sample: HealthSample, reading: Reading
    ) -> AlertEvent:
        event = AlertEvent(
            rule=rule.name,
            severity=rule.severity,
            state=state,
            t_s=sample.t_s,
            round_index=sample.round_index,
            value=reading.value,
            detail=reading.detail or rule.description,
        )
        self._events.append(event)
        if self._sink is not None:
            self._sink.write_line(event.to_dict())
        return event

    # -- reporting ------------------------------------------------------
    @property
    def events(self) -> tuple[AlertEvent, ...]:
        """Every fire/resolve transition so far, in order."""
        return tuple(self._events)

    def active_alerts(self) -> list[dict[str, Any]]:
        """Currently-firing alerts (rule, severity, since, value, detail)."""
        return [
            {
                "rule": event.rule,
                "severity": event.severity,
                "since_t_s": event.t_s,
                "value": event.value,
                "detail": event.detail,
            }
            for event in sorted(self._active.values(), key=lambda e: e.t_s)
        ]

    def summary(self) -> dict[str, Any]:
        """JSON-ready summary for the flight-recorder manifest."""
        by_severity: dict[str, int] = {}
        for name, count in self._fired.items():
            severity = next(r.severity for r in self.rules if r.name == name)
            by_severity[severity] = by_severity.get(severity, 0) + count
        return {
            "rules": [
                {"name": r.name, "severity": r.severity, "description": r.description}
                for r in self.rules
            ],
            "evaluations": self._evaluations,
            "fired_total": sum(self._fired.values()),
            "resolved_total": sum(self._resolved.values()),
            "by_rule": {
                name: {
                    "fired": self._fired.get(name, 0),
                    "resolved": self._resolved.get(name, 0),
                }
                for name in sorted(set(self._fired) | set(self._resolved))
            },
            "by_severity": {k: by_severity[k] for k in sorted(by_severity)},
            "active": self.active_alerts(),
        }

    def close(self) -> None:
        """Close a path-opened sink (no-op for injected sink objects)."""
        if self._owns_sink and self._sink is not None:
            self._sink.close()
            self._sink = None


def load_alerts(directory: str | Path) -> list[dict[str, Any]]:
    """Parse an artifact directory's ``alerts.jsonl`` ([] when absent).

    Like the event log, a truncated tail line (crashed run) is skipped.
    """
    import json

    path = Path(directory) / ALERTS_FILENAME
    if not path.exists():
        return []
    events: list[dict[str, Any]] = []
    for line in path.read_text().splitlines():
        if not line.strip():
            continue
        try:
            events.append(json.loads(line))
        except json.JSONDecodeError:
            continue
    return events


def _severity_rank(severity: str) -> int:
    return SEVERITIES.index(severity) if severity in SEVERITIES else len(SEVERITIES)


def rank_active(alerts: Iterable[Mapping[str, Any]]) -> list[Mapping[str, Any]]:
    """Active alerts ordered most severe first (for live displays)."""
    return sorted(alerts, key=lambda a: (-_severity_rank(str(a.get("severity", ""))), a.get("rule")))
