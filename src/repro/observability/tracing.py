"""Lightweight span tracing for the federated pipeline.

A :class:`Tracer` hands out context-manager :class:`Span` objects::

    with tracer.span("round.transmit", {"n_reports": 512}) as span:
        outcome = network.transmit(512, rng)
        span.set_attribute("delivered", int(outcome.delivered.sum()))

Spans are timed with the monotonic clock, nest through a per-thread stack
(so concurrent rounds on different threads never corrupt each other's
parentage), and are handed to every configured exporter as an immutable
:class:`SpanRecord` the moment they close.  Exceptions mark the span's
``status`` as ``"error"`` and propagate unchanged.

The default tracer everywhere in the library is :data:`NULL_TRACER`, whose
spans are a single shared no-op object: no clock reads, no allocation, no
RNG draws -- instrumented code is bit-identical to uninstrumented code
unless a real tracer is installed (see :func:`repro.observability.instrumented`).
"""

from __future__ import annotations

import itertools
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Mapping, Sequence

__all__ = [
    "SpanRecord",
    "Span",
    "NullSpan",
    "SimClock",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
]


class SimClock:
    """Deterministic clock: the n-th call returns ``start + n * step``.

    Installed as a :class:`Tracer`'s clock (and a profiler's CPU clock) it
    makes every recorded timestamp and duration a pure function of the call
    sequence, so two runs with the same seed produce *byte-identical*
    flight-recorder artifacts and reports (``repro.cli trace --sim-clock``).
    """

    __slots__ = ("_now", "step")

    def __init__(self, start: float = 0.0, step: float = 0.001) -> None:
        self._now = float(start)
        self.step = float(step)

    def __call__(self) -> float:
        now = self._now
        self._now = now + self.step
        return now


@dataclass(frozen=True)
class SpanRecord:
    """One finished span, as delivered to exporters."""

    name: str
    span_id: int
    parent_id: int | None
    start_time_s: float
    duration_s: float
    status: str = "ok"
    attributes: dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready representation (the JSONL exporter's line payload)."""
        return {
            "type": "span",
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start_time_s": self.start_time_s,
            "duration_s": self.duration_s,
            "status": self.status,
            "attributes": self.attributes,
        }


class Span:
    """A live span: a reentrant-safe context manager owned by one tracer."""

    __slots__ = (
        "_tracer",
        "name",
        "attributes",
        "span_id",
        "parent_id",
        "_start",
        "_wall_start",
        "_profile",
    )

    def __init__(self, tracer: "Tracer", name: str, attributes: dict[str, Any]) -> None:
        self._tracer = tracer
        self.name = name
        self.attributes = attributes
        self.span_id = 0
        self.parent_id: int | None = None
        self._start = 0.0
        self._wall_start = 0.0
        self._profile: Any = None

    def set_attribute(self, key: str, value: Any) -> None:
        """Attach one attribute to the span (overwrites an existing key)."""
        self.attributes[key] = value

    def __enter__(self) -> "Span":
        self.span_id = self._tracer._next_id()
        self.parent_id = self._tracer._push(self.span_id)
        profiler = self._tracer.profiler
        if profiler is not None:
            self._profile = profiler.begin()
        self._wall_start = self._tracer._wall()
        self._start = self._tracer._clock()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        duration = self._tracer._clock() - self._start
        profiler = self._tracer.profiler
        if profiler is not None and self._profile is not None:
            self.attributes.update(profiler.end(self._profile))
        self._tracer._pop()
        record = SpanRecord(
            name=self.name,
            span_id=self.span_id,
            parent_id=self.parent_id,
            start_time_s=self._wall_start,
            duration_s=duration,
            status="ok" if exc_type is None else "error",
            attributes=dict(self.attributes)
            if exc_type is None
            else {**self.attributes, "error": repr(exc)},
        )
        self._tracer._export(record)
        return False


class NullSpan:
    """The do-nothing span: one shared instance serves every disabled call."""

    __slots__ = ()

    def set_attribute(self, key: str, value: Any) -> None:
        pass

    def __enter__(self) -> "NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


_NULL_SPAN = NullSpan()


class Tracer:
    """Produces spans and fans finished records out to exporters.

    Parameters
    ----------
    exporters:
        Objects with an ``export(record: SpanRecord)`` method.  Exporters
        may be added later with :meth:`add_exporter`.
    profiler:
        Optional :class:`~repro.observability.profiler.PhaseProfiler`.  When
        set, every span is enriched with CPU time (and, opt-in, peak
        allocation) attributes on close, and the profiler accumulates
        per-phase latency histograms from the finished records.
    clock, wall_clock:
        Monotonic-duration and wall-timestamp clocks (default
        :func:`time.perf_counter` / :func:`time.time`).  Swap both for one
        :class:`SimClock` to make recorded timings deterministic.
    """

    enabled = True

    def __init__(
        self,
        exporters: Sequence[Any] = (),
        profiler: Any = None,
        clock: Any = None,
        wall_clock: Any = None,
    ) -> None:
        self._exporters = list(exporters)
        self._ids = itertools.count(1)
        self._local = threading.local()
        self.profiler = profiler
        self._clock = clock if clock is not None else time.perf_counter
        self._wall = wall_clock if wall_clock is not None else time.time

    def add_exporter(self, exporter: Any) -> None:
        self._exporters.append(exporter)

    def span(self, name: str, attributes: Mapping[str, Any] | None = None) -> Span:
        """Open a new span; use as a context manager."""
        return Span(self, name, dict(attributes) if attributes else {})

    def next_span_id(self) -> int:
        """Allocate one span id from this tracer's id space.

        The remote-span ingestion path uses this to remap span ids arriving
        from another process's tracer (whose local ids would collide) before
        re-exporting them here.
        """
        return next(self._ids)

    def ingest(self, record: SpanRecord) -> None:
        """Export an externally produced (already finished) span record.

        The record flows through the same exporter fan-out a locally closed
        span does; the caller is responsible for having remapped ``span_id``/
        ``parent_id`` into this tracer's id space (:meth:`next_span_id`) and
        for any clock alignment of ``start_time_s``.
        """
        self._export(record)

    def wall_time(self) -> float:
        """One reading of this tracer's wall clock (handshake timestamps)."""
        return self._wall()

    # -- internal plumbing used by Span --------------------------------
    def _next_id(self) -> int:
        return next(self._ids)

    def _stack(self) -> list[int]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def _push(self, span_id: int) -> int | None:
        stack = self._stack()
        parent = stack[-1] if stack else None
        stack.append(span_id)
        return parent

    def _pop(self) -> None:
        stack = self._stack()
        if stack:
            stack.pop()

    def _export(self, record: SpanRecord) -> None:
        for exporter in self._exporters:
            exporter.export(record)
        if self.profiler is not None:
            self.profiler.observe(record)


class NullTracer:
    """Zero-overhead tracer: every ``span()`` call returns the same no-op."""

    enabled = False
    profiler = None

    def add_exporter(self, exporter: Any) -> None:
        pass

    def span(self, name: str, attributes: Mapping[str, Any] | None = None) -> NullSpan:
        return _NULL_SPAN

    def next_span_id(self) -> int:
        return 0

    def ingest(self, record: SpanRecord) -> None:
        pass

    def wall_time(self) -> float:
        return 0.0


#: The process-wide disabled tracer (the library default).
NULL_TRACER = NullTracer()
