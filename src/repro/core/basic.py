"""Basic (single-round) bit-pushing mean estimation -- paper Algorithm 1.

Each client reveals (at most) one bit of its encoded value; the server
assigns bits according to a :class:`~repro.core.sampling.BitSamplingSchedule`
and reconstructs the mean from the per-bit report means via the linear
decomposition ``mean = sum_j 2**j * m_j``.

The estimator is unbiased, with variance given by Lemma 3.1 (see
:func:`repro.core.protocol.theoretical_variance`).  An optional local privacy
perturbation (randomized response) and an optional bit-squashing threshold
turn the same machinery into the paper's epsilon-LDP variant.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.client_plane import (
    ClientBatch,
    accumulate_bit_reports,
    elicit_values,
)
from repro.core.encoding import FixedPointEncoder
from repro.core.protocol import (
    BitPerturbation,
    bit_means_from_stats,
)
from repro.core.results import MeanEstimate, RoundSummary
from repro.core.sampling import (
    BitSamplingSchedule,
    apportion_counts,
    central_assignment,
    local_assignment,
    multi_bit_assignment,
)
from repro.core.squashing import squash_bit_means
from repro.exceptions import ConfigurationError
from repro.rng import ensure_rng

__all__ = ["BasicBitPushing", "estimate_mean"]

_RANDOMNESS_MODES = ("central", "local")


class BasicBitPushing:
    """Single-round bit-pushing estimator (Algorithm 1).

    Parameters
    ----------
    encoder:
        Fixed-point encoding of the client values.
    schedule:
        Bit-sampling schedule.  Defaults to the worst-case-optimal
        ``p_j \\propto 2**j`` of Eq. 7 (i.e. ``weighted(alpha=1.0)``).
    b_send:
        Bits revealed per client (Corollary 3.2).  The paper's deployed
        default -- and the worst-case privacy promise -- is 1.
    randomness:
        ``"central"`` (server partitions the cohort; quasi-Monte-Carlo,
        poisoning-resistant, the paper's default) or ``"local"`` (each
        client samples its own bit index).
    perturbation:
        Optional :class:`~repro.core.protocol.BitPerturbation` (e.g.
        randomized response) applied to every bit before it leaves the
        client; the estimator debiases automatically.
    squash_threshold:
        If > 0, estimated bit means below this absolute value are zeroed
        before reconstruction (Section 3.3's noise filter).

    Examples
    --------
    >>> import numpy as np
    >>> enc = FixedPointEncoder.for_integers(n_bits=8)
    >>> est = BasicBitPushing(enc)
    >>> values = np.full(10_000, 42.0)
    >>> round(est.estimate(values, rng=0).value)
    42
    """

    method = "basic"

    def __init__(
        self,
        encoder: FixedPointEncoder,
        schedule: BitSamplingSchedule | None = None,
        b_send: int = 1,
        randomness: str = "central",
        perturbation: BitPerturbation | None = None,
        squash_threshold: float = 0.0,
    ) -> None:
        if schedule is None:
            schedule = BitSamplingSchedule.weighted(encoder.n_bits, alpha=1.0)
        if schedule.n_bits != encoder.n_bits:
            raise ConfigurationError(
                f"schedule covers {schedule.n_bits} bits but encoder has {encoder.n_bits}"
            )
        if randomness not in _RANDOMNESS_MODES:
            raise ConfigurationError(f"randomness must be one of {_RANDOMNESS_MODES}")
        if b_send < 1:
            raise ConfigurationError(f"b_send must be >= 1, got {b_send}")
        if squash_threshold < 0:
            raise ConfigurationError(f"squash_threshold must be >= 0, got {squash_threshold}")
        self.encoder = encoder
        self.schedule = schedule
        self.b_send = b_send
        self.randomness = randomness
        self.perturbation = perturbation
        self.squash_threshold = squash_threshold

    # ------------------------------------------------------------------
    def estimate(
        self,
        values: np.ndarray,
        rng: np.random.Generator | int | None = None,
    ) -> MeanEstimate:
        """Estimate the mean of real-valued ``values`` from one-bit reports."""
        gen = ensure_rng(rng)
        encoded = self.encoder.encode(np.asarray(values, dtype=np.float64))
        return self.estimate_encoded(encoded, gen)

    def estimate_encoded(
        self,
        encoded: np.ndarray,
        rng: np.random.Generator | int | None = None,
    ) -> MeanEstimate:
        """Estimate from already-encoded uint64 values (one per client)."""
        gen = ensure_rng(rng)
        encoded = np.asarray(encoded, dtype=np.uint64)
        n_clients = int(encoded.size)
        if n_clients == 0:
            raise ConfigurationError("cannot estimate a mean from zero clients")

        assignment = self._draw_assignment(n_clients, gen)
        # Chunk-streamed collection (bounded memory for million-client
        # cohorts); bit-identical to collect_bit_reports for any chunk size,
        # and a cohort that fits in one REPRO_BATCH_CHUNK takes exactly the
        # legacy single-pass path.
        sums, counts = accumulate_bit_reports(
            encoded, self.encoder.n_bits, assignment, self.perturbation, gen
        )
        means = bit_means_from_stats(sums, counts, self.perturbation)
        round_summary = RoundSummary(
            probabilities=self.schedule.probabilities,
            counts=counts,
            sums=means * counts,
            bit_means=means,
            n_clients=n_clients,
        )
        final_means, squashed = squash_bit_means(
            means, self.squash_threshold, clip_to_unit=self.perturbation is not None
        )
        encoded_mean = float(self.encoder.powers @ final_means)
        return MeanEstimate(
            value=self.encoder.decode_scalar(encoded_mean),
            encoded_value=encoded_mean,
            bit_means=final_means,
            counts=counts,
            n_clients=n_clients,
            n_bits=self.encoder.n_bits,
            method=self.method,
            rounds=(round_summary,),
            squashed_bits=tuple(int(j) for j in squashed),
            metadata={
                "b_send": self.b_send,
                "randomness": self.randomness,
                "ldp": self.perturbation is not None,
            },
        )

    def estimate_clients(
        self,
        batch: ClientBatch,
        strategy: str = "sample",
        rng: np.random.Generator | int | None = None,
        chunk: int | None = None,
    ) -> MeanEstimate:
        """Estimate straight from a columnar :class:`ClientBatch`.

        Elicits one value per client with the chunk-streamed columnar
        kernels, then runs the standard protocol.  Bit-identical to
        ``estimate(elicit_batch([c.values for c in devices], strategy, gen),
        gen)`` for ``"sample"``/``"max"``/``"latest"`` elicitation (see
        :mod:`repro.core.client_plane` for the ``"mean"`` ulp caveat).
        """
        gen = ensure_rng(rng)
        values = elicit_values(batch, strategy, gen, chunk=chunk)
        return self.estimate(values, gen)

    # ------------------------------------------------------------------
    def estimate_batch(
        self,
        values: np.ndarray,
        rngs: "Sequence[np.random.Generator | int | None]",
    ) -> np.ndarray:
        """Estimate R independent repetitions at once from an ``(R, n)`` array.

        Row ``r`` is one repetition's population and consumes randomness
        only from ``rngs[r]``, in exactly the order :meth:`estimate` would
        (assignment draw, then perturbation) -- so the result is
        *bit-identical* to ``[estimate(values[r], rngs[r]).value for r]``
        for any perturbation, randomness mode, ``b_send`` and squashing
        configuration (asserted in ``tests/test_execution.py``).

        The speedup comes from hoisting the shape-dependent work out of the
        repetition loop: one 2-D encode, a shared ``np.repeat`` assignment
        template (central mode permutes a copy per repetition), one batched
        shift-and-mask bit extraction, and a single flattened-offset
        ``np.bincount`` for all ``R * n_bits`` report sums and counts.
        Returns the R decoded mean estimates as a float64 array.
        """
        vals = np.asarray(values, dtype=np.float64)
        if vals.ndim != 2:
            raise ConfigurationError(f"estimate_batch needs an (R, n) array, got shape {vals.shape}")
        n_reps, n_clients = vals.shape
        if n_clients == 0:
            raise ConfigurationError("cannot estimate a mean from zero clients")
        if len(rngs) != n_reps:
            raise ConfigurationError(f"got {n_reps} repetitions but {len(rngs)} generators")
        n_bits = self.encoder.n_bits
        encoded = self.encoder.encode(vals)

        # Per-rep randomness must replay estimate()'s stream, so the draws
        # stay in a loop; only the shared template is hoisted.
        use_template = self.b_send == 1 and self.randomness == "central"
        if use_template:
            counts = apportion_counts(n_clients, self.schedule)
            template = np.repeat(np.arange(n_bits, dtype=np.int64), counts)
        gens = [ensure_rng(rng) for rng in rngs]
        b_send = self.b_send if self.b_send > 1 else 1
        assignments = np.empty((n_reps, n_clients, b_send), dtype=np.int64)
        for r, gen in enumerate(gens):
            if use_template:
                assignment = template.copy()
                gen.shuffle(assignment)
            else:
                assignment = self._draw_assignment(n_clients, gen)
            assignments[r] = assignment.reshape(n_clients, b_send)

        reported = (
            (encoded[:, :, None] >> assignments.astype(np.uint64)) & np.uint64(1)
        ).astype(np.uint8)
        if self.perturbation is not None:
            for r, gen in enumerate(gens):
                reported[r] = np.asarray(
                    self.perturbation.perturb_bits(reported[r], gen), dtype=np.uint8
                )

        # One bincount over all repetitions: offsetting rep r's bit indices
        # by r * n_bits keeps every (rep, bit) accumulator separate.  Bits
        # are 0/1, so the per-bit sum is the *count* of set bits -- an exact
        # integer in float64, hence bit-identical to estimate()'s serial
        # float accumulation regardless of summation order.
        offsets = (
            np.arange(n_reps, dtype=np.int64)[:, None] * n_bits
            + assignments.reshape(n_reps, -1)
        )
        flat_offsets = offsets.ravel()
        ones = flat_offsets[reported.reshape(n_reps, -1).ravel() == 1]
        sums = (
            np.bincount(ones, minlength=n_reps * n_bits)
            .reshape(n_reps, n_bits)
            .astype(np.float64)
        )
        report_counts = (
            np.bincount(flat_offsets, minlength=n_reps * n_bits)
            .reshape(n_reps, n_bits)
            .astype(np.int64)
        )

        means = bit_means_from_stats(sums, report_counts, self.perturbation)
        final_means, _ = squash_bit_means(
            means, self.squash_threshold, clip_to_unit=self.perturbation is not None
        )
        # Per-row dots (not one (R, b) @ (b,) matmul): BLAS may reorder the
        # 2-D reduction, and the contract is bit-identity with estimate().
        powers = self.encoder.powers
        estimates = np.empty(n_reps)
        for r in range(n_reps):
            estimates[r] = self.encoder.decode_scalar(float(powers @ final_means[r]))
        return estimates

    # ------------------------------------------------------------------
    def _draw_assignment(self, n_clients: int, gen: np.random.Generator) -> np.ndarray:
        if self.b_send > 1:
            return multi_bit_assignment(n_clients, self.schedule, self.b_send, gen)
        if self.randomness == "central":
            return central_assignment(n_clients, self.schedule, gen)
        return local_assignment(n_clients, self.schedule, gen)


def estimate_mean(
    values: np.ndarray,
    n_bits: int,
    alpha: float = 1.0,
    scale: float = 1.0,
    offset: float = 0.0,
    rng: np.random.Generator | int | None = None,
) -> MeanEstimate:
    """One-call convenience wrapper around :class:`BasicBitPushing`.

    Encodes ``values`` with a ``FixedPointEncoder(n_bits, scale, offset)``
    and a weighted schedule with exponent ``alpha``.
    """
    encoder = FixedPointEncoder(n_bits=n_bits, scale=scale, offset=offset)
    schedule = BitSamplingSchedule.weighted(n_bits, alpha=alpha)
    return BasicBitPushing(encoder, schedule).estimate(values, rng)
