"""Basic (single-round) bit-pushing mean estimation -- paper Algorithm 1.

Each client reveals (at most) one bit of its encoded value; the server
assigns bits according to a :class:`~repro.core.sampling.BitSamplingSchedule`
and reconstructs the mean from the per-bit report means via the linear
decomposition ``mean = sum_j 2**j * m_j``.

The estimator is unbiased, with variance given by Lemma 3.1 (see
:func:`repro.core.protocol.theoretical_variance`).  An optional local privacy
perturbation (randomized response) and an optional bit-squashing threshold
turn the same machinery into the paper's epsilon-LDP variant.
"""

from __future__ import annotations

import numpy as np

from repro.core.encoding import FixedPointEncoder
from repro.core.protocol import (
    BitPerturbation,
    bit_means_from_stats,
    collect_bit_reports,
)
from repro.core.results import MeanEstimate, RoundSummary
from repro.core.sampling import (
    BitSamplingSchedule,
    central_assignment,
    local_assignment,
    multi_bit_assignment,
)
from repro.core.squashing import squash_bit_means
from repro.exceptions import ConfigurationError
from repro.rng import ensure_rng

__all__ = ["BasicBitPushing", "estimate_mean"]

_RANDOMNESS_MODES = ("central", "local")


class BasicBitPushing:
    """Single-round bit-pushing estimator (Algorithm 1).

    Parameters
    ----------
    encoder:
        Fixed-point encoding of the client values.
    schedule:
        Bit-sampling schedule.  Defaults to the worst-case-optimal
        ``p_j \\propto 2**j`` of Eq. 7 (i.e. ``weighted(alpha=1.0)``).
    b_send:
        Bits revealed per client (Corollary 3.2).  The paper's deployed
        default -- and the worst-case privacy promise -- is 1.
    randomness:
        ``"central"`` (server partitions the cohort; quasi-Monte-Carlo,
        poisoning-resistant, the paper's default) or ``"local"`` (each
        client samples its own bit index).
    perturbation:
        Optional :class:`~repro.core.protocol.BitPerturbation` (e.g.
        randomized response) applied to every bit before it leaves the
        client; the estimator debiases automatically.
    squash_threshold:
        If > 0, estimated bit means below this absolute value are zeroed
        before reconstruction (Section 3.3's noise filter).

    Examples
    --------
    >>> import numpy as np
    >>> enc = FixedPointEncoder.for_integers(n_bits=8)
    >>> est = BasicBitPushing(enc)
    >>> values = np.full(10_000, 42.0)
    >>> round(est.estimate(values, rng=0).value)
    42
    """

    method = "basic"

    def __init__(
        self,
        encoder: FixedPointEncoder,
        schedule: BitSamplingSchedule | None = None,
        b_send: int = 1,
        randomness: str = "central",
        perturbation: BitPerturbation | None = None,
        squash_threshold: float = 0.0,
    ) -> None:
        if schedule is None:
            schedule = BitSamplingSchedule.weighted(encoder.n_bits, alpha=1.0)
        if schedule.n_bits != encoder.n_bits:
            raise ConfigurationError(
                f"schedule covers {schedule.n_bits} bits but encoder has {encoder.n_bits}"
            )
        if randomness not in _RANDOMNESS_MODES:
            raise ConfigurationError(f"randomness must be one of {_RANDOMNESS_MODES}")
        if b_send < 1:
            raise ConfigurationError(f"b_send must be >= 1, got {b_send}")
        if squash_threshold < 0:
            raise ConfigurationError(f"squash_threshold must be >= 0, got {squash_threshold}")
        self.encoder = encoder
        self.schedule = schedule
        self.b_send = b_send
        self.randomness = randomness
        self.perturbation = perturbation
        self.squash_threshold = squash_threshold

    # ------------------------------------------------------------------
    def estimate(
        self,
        values: np.ndarray,
        rng: np.random.Generator | int | None = None,
    ) -> MeanEstimate:
        """Estimate the mean of real-valued ``values`` from one-bit reports."""
        gen = ensure_rng(rng)
        encoded = self.encoder.encode(np.asarray(values, dtype=np.float64))
        return self.estimate_encoded(encoded, gen)

    def estimate_encoded(
        self,
        encoded: np.ndarray,
        rng: np.random.Generator | int | None = None,
    ) -> MeanEstimate:
        """Estimate from already-encoded uint64 values (one per client)."""
        gen = ensure_rng(rng)
        encoded = np.asarray(encoded, dtype=np.uint64)
        n_clients = int(encoded.size)
        if n_clients == 0:
            raise ConfigurationError("cannot estimate a mean from zero clients")

        assignment = self._draw_assignment(n_clients, gen)
        sums, counts = collect_bit_reports(
            encoded, self.encoder.n_bits, assignment, self.perturbation, gen
        )
        means = bit_means_from_stats(sums, counts, self.perturbation)
        round_summary = RoundSummary(
            probabilities=self.schedule.probabilities,
            counts=counts,
            sums=means * counts,
            bit_means=means,
            n_clients=n_clients,
        )
        final_means, squashed = squash_bit_means(
            means, self.squash_threshold, clip_to_unit=self.perturbation is not None
        )
        encoded_mean = float(np.exp2(np.arange(self.encoder.n_bits)) @ final_means)
        return MeanEstimate(
            value=self.encoder.decode_scalar(encoded_mean),
            encoded_value=encoded_mean,
            bit_means=final_means,
            counts=counts,
            n_clients=n_clients,
            n_bits=self.encoder.n_bits,
            method=self.method,
            rounds=(round_summary,),
            squashed_bits=tuple(int(j) for j in squashed),
            metadata={
                "b_send": self.b_send,
                "randomness": self.randomness,
                "ldp": self.perturbation is not None,
            },
        )

    # ------------------------------------------------------------------
    def _draw_assignment(self, n_clients: int, gen: np.random.Generator) -> np.ndarray:
        if self.b_send > 1:
            return multi_bit_assignment(n_clients, self.schedule, self.b_send, gen)
        if self.randomness == "central":
            return central_assignment(n_clients, self.schedule, gen)
        return local_assignment(n_clients, self.schedule, gen)


def estimate_mean(
    values: np.ndarray,
    n_bits: int,
    alpha: float = 1.0,
    scale: float = 1.0,
    offset: float = 0.0,
    rng: np.random.Generator | int | None = None,
) -> MeanEstimate:
    """One-call convenience wrapper around :class:`BasicBitPushing`.

    Encodes ``values`` with a ``FixedPointEncoder(n_bits, scale, offset)``
    and a weighted schedule with exponent ``alpha``.
    """
    encoder = FixedPointEncoder(n_bits=n_bits, scale=scale, offset=offset)
    schedule = BitSamplingSchedule.weighted(n_bits, alpha=alpha)
    return BasicBitPushing(encoder, schedule).estimate(values, rng)
