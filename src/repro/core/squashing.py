"""Bit squashing: filtering noise-dominated bits under differential privacy.

With randomized-response noise, the estimated mean of an *unused* bit is no
longer zero -- it is a zero-mean fluctuation whose magnitude scales like the
DP noise (and can even leave ``[0, 1]``, see paper Figure 4b).  Folding those
fluctuations into the estimate at weight ``2**j`` is catastrophic for high
bit indices.  The paper's remedy (Section 3.3, Figure 4) is a simple
heuristic: if an estimated bit mean is below an absolute threshold, assume
the bit carries only noise and "squash" it to zero.

This module provides the squash operation, a helper to express the threshold
as a multiple of the *expected* randomized-response noise level (the x-axis
of Figure 4a), and a contiguity variant that squashes everything above the
first long run of quiet bits.
"""

from __future__ import annotations

import math

import numpy as np

__all__ = [
    "squash_bit_means",
    "rr_noise_std",
    "threshold_from_noise_multiple",
    "per_bit_squash_thresholds",
]


def squash_bit_means(
    bit_means: np.ndarray,
    threshold: "float | np.ndarray",
    clip_to_unit: bool = True,
) -> tuple[np.ndarray, np.ndarray]:
    """Zero out bit means whose magnitude falls below ``threshold``.

    Parameters
    ----------
    bit_means:
        Estimated per-bit means (possibly noisy, possibly outside [0, 1]).
    threshold:
        Absolute squash threshold -- a scalar, or one threshold per bit
        (the count-aware form of :func:`per_bit_squash_thresholds`, which
        prevents sparsely-sampled noise bits from sneaking past a
        population-wide value).  Entries <= 0 disable squashing for that
        bit; clipping still applies.
    clip_to_unit:
        Clip surviving means into ``[0, 1]`` afterwards.  DP noise can
        produce means below 0 (which would otherwise *subtract* mass) or
        above 1; a true bit mean is a proportion, so clipping is always
        sound post-processing.

    Returns
    -------
    squashed, squashed_indices:
        The filtered means and the indices that were zeroed.
    """
    means = np.asarray(bit_means, dtype=np.float64).copy()
    thresholds = np.broadcast_to(np.asarray(threshold, dtype=np.float64), means.shape)
    quiet = (thresholds > 0) & (np.abs(means) < thresholds)
    means[quiet] = 0.0
    if clip_to_unit:
        means = np.clip(means, 0.0, 1.0)
    return means, np.flatnonzero(quiet)


def rr_noise_std(epsilon: float, count: float) -> float:
    """Std. dev. of an unbiased randomized-response bit-mean estimate.

    For randomized response with ``p = e^eps / (1 + e^eps)`` over ``count``
    reports, the debiased estimator's standard deviation is at most
    ``1 / (2 (2p - 1) sqrt(count))`` (worst case over the true bit mean,
    attained near reported-mean 1/2).  This is the natural noise unit for
    the squash threshold: Figure 4a sweeps the threshold in multiples of it.
    """
    if epsilon <= 0:
        raise ValueError(f"epsilon must be positive, got {epsilon}")
    if count <= 0:
        return float("inf")
    p = math.exp(epsilon) / (1.0 + math.exp(epsilon))
    return 1.0 / (2.0 * (2.0 * p - 1.0) * math.sqrt(count))


def threshold_from_noise_multiple(
    multiple: float,
    epsilon: float,
    counts: np.ndarray,
) -> float:
    """Turn a noise multiple into an absolute squash threshold.

    Uses the *median* per-bit report count so a handful of barely-sampled
    bits do not blow up the threshold for everyone.  ``multiple = 0``
    disables squashing.
    """
    if multiple < 0:
        raise ValueError(f"noise multiple must be >= 0, got {multiple}")
    if multiple == 0:
        return 0.0
    counts = np.asarray(counts, dtype=np.float64)
    sampled = counts[counts > 0]
    if sampled.size == 0:
        return 0.0
    return multiple * rr_noise_std(epsilon, float(np.median(sampled)))


def per_bit_squash_thresholds(
    multiple: float,
    epsilon: float,
    counts: np.ndarray,
) -> np.ndarray:
    """Count-aware squash thresholds: ``tau_j = multiple * noise_std(c_j)``.

    A bit's debiased mean estimate fluctuates with std ~ ``1/sqrt(c_j)``, so
    a single population-wide threshold (calibrated to the typical count)
    lets barely-sampled noise bits through -- and at weight ``2**j`` a single
    escapee dominates the estimate.  Scaling the threshold per bit by its
    own report count closes that hole.  Zero-count bits get threshold 0
    (their mean is identically 0; nothing to squash).  ``multiple = 0``
    disables squashing everywhere.
    """
    if multiple < 0:
        raise ValueError(f"noise multiple must be >= 0, got {multiple}")
    counts = np.asarray(counts, dtype=np.float64)
    thresholds = np.zeros_like(counts)
    if multiple == 0:
        return thresholds
    sampled = counts > 0
    thresholds[sampled] = [
        multiple * rr_noise_std(epsilon, c) for c in counts[sampled]
    ]
    return thresholds
