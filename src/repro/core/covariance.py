"""Covariance and correlation between two metrics via bit-pushing.

Products are on the paper's Section 3.4 extension list, and the covariance
``Cov[X, Y] = E[XY] - E[X] E[Y]`` reduces to three mean estimations of
values each client can compute locally: ``x``, ``y``, and ``x * y``.  The
cohort splits three ways so every client still reveals exactly one bit of
exactly one derived value.

The product phase needs ``n_bits_x + n_bits_y`` bits of headroom.  As with
the "moments" variance decomposition, the subtraction of large, similar
quantities amplifies relative error -- covariance estimation wants big
cohorts (the tests quantify this), which is the honest trade-off the paper's
Lemma 3.5 analysis predicts for product-form estimators.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.core.adaptive import AdaptiveBitPushing
from repro.core.basic import BasicBitPushing
from repro.core.encoding import MAX_BITS, FixedPointEncoder
from repro.core.protocol import BitPerturbation
from repro.exceptions import ConfigurationError
from repro.rng import ensure_rng

__all__ = ["CovarianceEstimate", "CovarianceEstimator"]

_INNER = ("basic", "adaptive")


@dataclass(frozen=True)
class CovarianceEstimate:
    """Covariance (and correlation, when variances are supplied) estimate."""

    value: float
    mean_x: float
    mean_y: float
    mean_xy: float
    n_clients: int
    metadata: dict[str, Any] = field(default_factory=dict)

    def correlation(self, var_x: float, var_y: float) -> float:
        """Pearson correlation implied by externally-estimated variances."""
        if var_x <= 0 or var_y <= 0:
            raise ConfigurationError("variances must be positive for a correlation")
        return float(np.clip(self.value / np.sqrt(var_x * var_y), -1.0, 1.0))

    def __float__(self) -> float:  # pragma: no cover - trivial
        return self.value


class CovarianceEstimator:
    """Estimate ``Cov[X, Y]`` from one bit per client.

    Parameters
    ----------
    encoder_x, encoder_y:
        Unit-scale integer encoders for the two metrics (offset/scale
        encoders are not supported here: the product of two affine grids is
        not an affine grid).
    inner:
        Mean engine per phase (``"adaptive"`` default).
    perturbation:
        Optional local DP mechanism for every phase.

    Examples
    --------
    >>> import numpy as np
    >>> rng = np.random.default_rng(0)
    >>> x = np.clip(rng.normal(100, 20, 300_000), 0, None)
    >>> y = np.clip(0.5 * x + rng.normal(0, 10, x.size) + 20, 0, None)
    >>> est = CovarianceEstimator(
    ...     FixedPointEncoder.for_integers(8), FixedPointEncoder.for_integers(8))
    >>> truth = float(np.cov(x, y)[0, 1])
    >>> bool(abs(est.estimate(x, y, rng).value - truth) / truth < 0.5)
    True
    """

    def __init__(
        self,
        encoder_x: FixedPointEncoder,
        encoder_y: FixedPointEncoder,
        inner: str = "adaptive",
        perturbation: BitPerturbation | None = None,
    ) -> None:
        if inner not in _INNER:
            raise ConfigurationError(f"inner must be one of {_INNER}, got {inner!r}")
        for name, encoder in (("encoder_x", encoder_x), ("encoder_y", encoder_y)):
            if encoder.scale != 1.0 or encoder.offset != 0.0:
                raise ConfigurationError(
                    f"{name} must be a unit-scale integer encoder "
                    "(products of affine grids are not affine)"
                )
        product_bits = encoder_x.n_bits + encoder_y.n_bits
        if product_bits > MAX_BITS:
            raise ConfigurationError(
                f"product phase needs {product_bits} bits (> {MAX_BITS}); "
                "use narrower encoders"
            )
        self.encoder_x = encoder_x
        self.encoder_y = encoder_y
        self.inner = inner
        self.perturbation = perturbation

    # ------------------------------------------------------------------
    def estimate(
        self,
        x: np.ndarray,
        y: np.ndarray,
        rng: np.random.Generator | int | None = None,
    ) -> CovarianceEstimate:
        """Estimate the covariance of paired metrics ``(x_i, y_i)``."""
        gen = ensure_rng(rng)
        x = np.asarray(x, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64)
        if x.shape != y.shape or x.ndim != 1:
            raise ConfigurationError(
                f"x and y must be matching 1-D arrays, got {x.shape} vs {y.shape}"
            )
        n_clients = int(x.size)
        if n_clients < 6:
            raise ConfigurationError(f"covariance needs >= 6 clients, got {n_clients}")

        # Three disjoint thirds: E[X], E[Y], E[XY].
        order = gen.permutation(n_clients)
        thirds = np.array_split(order, 3)
        qx = self.encoder_x.encode(x).astype(np.float64)
        qy = self.encoder_y.encode(y).astype(np.float64)

        mean_x = self._mean(qx[thirds[0]], self.encoder_x, gen)
        mean_y = self._mean(qy[thirds[1]], self.encoder_y, gen)
        product_encoder = FixedPointEncoder.for_integers(
            self.encoder_x.n_bits + self.encoder_y.n_bits
        )
        mean_xy = self._mean(qx[thirds[2]] * qy[thirds[2]], product_encoder, gen)

        return CovarianceEstimate(
            value=mean_xy - mean_x * mean_y,
            mean_x=mean_x,
            mean_y=mean_y,
            mean_xy=mean_xy,
            n_clients=n_clients,
            metadata={"inner": self.inner, "ldp": self.perturbation is not None},
        )

    # ------------------------------------------------------------------
    def _mean(
        self,
        encoded_values: np.ndarray,
        encoder: FixedPointEncoder,
        gen: np.random.Generator,
    ) -> float:
        if self.inner == "basic":
            estimator = BasicBitPushing(encoder, perturbation=self.perturbation)
        else:
            estimator = AdaptiveBitPushing(encoder, perturbation=self.perturbation)
        return estimator.estimate(encoded_values, gen).encoded_value
