"""Vector (multi-dimensional) mean estimation -- the federated-learning case.

The paper's opening motivation is that "federated learning computes sample
means for gradient updates" (Section 1), and its discussion of
communication efficiency targets "multi-dimensional data" (Section 2).
:class:`VectorMeanEstimator` extends bit-pushing to that setting while
preserving the worst-case promise: each client reveals **one bit of one
coordinate** of its vector (or ``dims_per_client`` coordinates, each one
bit, when the budget allows).

Protocol: the server partitions the cohort uniformly across coordinates
(central randomness, so per-coordinate cohort sizes are deterministic and a
poisoner cannot crowd a coordinate), then runs an independent bit-pushing
mean estimation inside each coordinate group.  Signed data -- gradients --
is handled the library's standard way: an offset encoder over
``[-clip, +clip]`` (signed binary expansions are not linear in the sign
bit; paper footnote 1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.core.adaptive import AdaptiveBitPushing
from repro.core.basic import BasicBitPushing
from repro.core.encoding import FixedPointEncoder
from repro.core.protocol import BitPerturbation
from repro.core.results import MeanEstimate
from repro.exceptions import ConfigurationError
from repro.rng import ensure_rng

__all__ = ["VectorMeanEstimate", "VectorMeanEstimator"]

_MODES = ("basic", "adaptive")


@dataclass(frozen=True)
class VectorMeanEstimate:
    """A d-dimensional mean estimate with per-coordinate diagnostics."""

    values: np.ndarray
    per_dim: tuple[MeanEstimate, ...]
    n_clients: int
    n_dims: int
    metadata: dict[str, Any] = field(default_factory=dict)

    @property
    def reports_per_dim(self) -> np.ndarray:
        """How many clients served each coordinate."""
        return np.array([est.n_clients for est in self.per_dim])

    def l2_error(self, truth: np.ndarray) -> float:
        """Euclidean distance to a reference vector (for evaluation)."""
        truth = np.asarray(truth, dtype=np.float64)
        if truth.shape != self.values.shape:
            raise ConfigurationError(
                f"truth shape {truth.shape} != estimate shape {self.values.shape}"
            )
        return float(np.linalg.norm(self.values - truth))


class VectorMeanEstimator:
    """Estimate the mean of d-dimensional client vectors, one bit per client.

    Parameters
    ----------
    encoder:
        Fixed-point encoding shared by all coordinates.  For gradients use
        ``FixedPointEncoder.for_range(-clip, clip, n_bits)`` -- values are
        clipped coordinate-wise, which doubles as the usual gradient
        clipping.
    n_dims:
        Vector dimensionality ``d``.
    mode:
        ``"basic"`` (one round; the right choice inside an FL round loop)
        or ``"adaptive"`` (two rounds per coordinate).
    dims_per_client:
        Coordinates each client reports on (one bit each).  The default 1
        keeps the strictest promise; FL deployments trading privacy for
        round efficiency can raise it.
    perturbation:
        Optional local DP mechanism applied to every transmitted bit.
    estimator_kwargs:
        Extra arguments for the per-coordinate estimators.

    Examples
    --------
    >>> import numpy as np
    >>> rng = np.random.default_rng(0)
    >>> gradients = rng.normal(0.1, 0.05, size=(40_000, 4))
    >>> encoder = FixedPointEncoder.for_range(-1.0, 1.0, n_bits=10)
    >>> est = VectorMeanEstimator(encoder, n_dims=4)
    >>> result = est.estimate(gradients, rng)
    >>> bool(result.l2_error(gradients.mean(axis=0)) < 0.02)
    True
    """

    def __init__(
        self,
        encoder: FixedPointEncoder,
        n_dims: int,
        mode: str = "basic",
        dims_per_client: int = 1,
        perturbation: BitPerturbation | None = None,
        estimator_kwargs: dict[str, Any] | None = None,
    ) -> None:
        if n_dims < 1:
            raise ConfigurationError(f"n_dims must be >= 1, got {n_dims}")
        if mode not in _MODES:
            raise ConfigurationError(f"mode must be one of {_MODES}, got {mode!r}")
        if not 1 <= dims_per_client <= n_dims:
            raise ConfigurationError(
                f"dims_per_client must be in [1, {n_dims}], got {dims_per_client}"
            )
        self.encoder = encoder
        self.n_dims = n_dims
        self.mode = mode
        self.dims_per_client = dims_per_client
        self.perturbation = perturbation
        self.estimator_kwargs = dict(estimator_kwargs or {})

    # ------------------------------------------------------------------
    def estimate(
        self,
        vectors: np.ndarray,
        rng: np.random.Generator | int | None = None,
    ) -> VectorMeanEstimate:
        """Estimate ``vectors.mean(axis=0)`` from one bit per client (per dim slot)."""
        gen = ensure_rng(rng)
        matrix = np.asarray(vectors, dtype=np.float64)
        if matrix.ndim != 2 or matrix.shape[1] != self.n_dims:
            raise ConfigurationError(
                f"expected an (n, {self.n_dims}) matrix, got shape {matrix.shape}"
            )
        n_clients = matrix.shape[0]
        min_needed = (2 if self.mode == "adaptive" else 1) * self.n_dims
        if n_clients * self.dims_per_client < min_needed:
            raise ConfigurationError(
                f"{n_clients} clients x {self.dims_per_client} dims/client cannot "
                f"cover {self.n_dims} coordinates in {self.mode} mode"
            )

        # Deal clients to coordinate groups round-robin after a shuffle:
        # deterministic, balanced group sizes (central randomness).  With
        # dims_per_client = k > 1, shuffled position p serves coordinates
        # (p + j * offset) mod d for j < k with offset = d // k -- k
        # distinct coordinates per client, every group the same size.
        order = gen.permutation(n_clients)
        offset = max(1, self.n_dims // self.dims_per_client)
        # Vectorized grouping: build all (position, slot) -> coordinate pairs
        # at once and bucket them with a stable sort.  Stability preserves
        # the (position-major, slot-minor) order the original append loop
        # produced, keeping per-group client order -- and therefore every
        # downstream estimate -- bit-identical to the object-path loop
        # (pinned in tests/test_client_plane.py).
        slots = np.arange(self.dims_per_client, dtype=np.int64)
        flat_dims = (
            (np.arange(n_clients, dtype=np.int64)[:, None] + slots[None, :] * offset)
            % self.n_dims
        ).ravel()
        flat_clients = np.repeat(order.astype(np.int64), self.dims_per_client)
        by_dim = np.argsort(flat_dims, kind="stable")
        boundaries = np.searchsorted(flat_dims[by_dim], np.arange(self.n_dims + 1))
        grouped_clients = flat_clients[by_dim]

        per_dim_estimates: list[MeanEstimate] = []
        values = np.empty(self.n_dims)
        for dim in range(self.n_dims):
            members = grouped_clients[boundaries[dim] : boundaries[dim + 1]]
            group = matrix[members, dim]
            estimator = self._make_estimator()
            result = estimator.estimate(group, gen)
            per_dim_estimates.append(result)
            values[dim] = result.value

        return VectorMeanEstimate(
            values=values,
            per_dim=tuple(per_dim_estimates),
            n_clients=n_clients,
            n_dims=self.n_dims,
            metadata={
                "mode": self.mode,
                "dims_per_client": self.dims_per_client,
                "ldp": self.perturbation is not None,
            },
        )

    # ------------------------------------------------------------------
    def _make_estimator(self):
        if self.mode == "basic":
            return BasicBitPushing(
                self.encoder, perturbation=self.perturbation, **self.estimator_kwargs
            )
        return AdaptiveBitPushing(
            self.encoder, perturbation=self.perturbation, **self.estimator_kwargs
        )
