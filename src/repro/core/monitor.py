"""Heavy-tail / non-stationarity monitoring of the occupied bit range.

Section 1.1 of the paper observes that mean estimation is not meaningful for
highly skewed data; instead, bit-pushing "can report an upper bound on the
aggregated samples, and flag when this bound changes significantly over
time, indicating a heavy-tail and/or non-stationary distribution".

:class:`HighBitMonitor` implements that idea: feed it the per-bit means of
successive aggregation rounds and it tracks the highest *occupied* bit index
(bits whose mean clears a configurable noise floor).  The implied upper
bound on the data is ``2**(top+1) - 1`` encoded units; when the top bit
drifts by at least ``shift_threshold`` positions from its recent baseline,
the monitor emits a :class:`MonitorAlert`.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

import numpy as np

from repro.exceptions import ConfigurationError
from repro.observability import get_metrics, get_tracer

__all__ = ["MonitorAlert", "HighBitMonitor"]


@dataclass(frozen=True)
class MonitorAlert:
    """Emitted when the occupied bit range shifts significantly.

    Attributes
    ----------
    round_index:
        0-based index of the update that triggered the alert.
    baseline_bit / observed_bit:
        Recent-median top occupied bit vs the newly observed one.
    shift:
        ``observed_bit - baseline_bit`` (positive = data grew).
    upper_bound:
        New implied upper bound on the data, in encoded units.
    message:
        Human-readable summary suitable for an operator dashboard.
    """

    round_index: int
    baseline_bit: int
    observed_bit: int
    shift: int
    upper_bound: float
    message: str


class HighBitMonitor:
    """Track the top occupied bit across rounds and flag large shifts.

    Parameters
    ----------
    noise_floor:
        A bit counts as occupied when its estimated mean exceeds this value.
        Under local DP, set it near the squash threshold so noise bits do
        not masquerade as signal.
    shift_threshold:
        Minimum |shift| in bit positions (relative to the rolling baseline)
        that triggers an alert.  One bit position = a 2x change in the data
        bound.
    window:
        Number of recent rounds forming the baseline (median of their top
        bits).  No alerts fire until the window has filled once.

    Examples
    --------
    >>> monitor = HighBitMonitor(noise_floor=0.01, shift_threshold=2, window=3)
    >>> quiet = [0.4, 0.5, 0.3, 0.0, 0.0, 0.0, 0.0, 0.0]
    >>> for _ in range(3):
    ...     _ = monitor.update(quiet)
    >>> spike = [0.4, 0.5, 0.3, 0.0, 0.0, 0.0, 0.2, 0.0]
    >>> alert = monitor.update(spike)
    >>> alert.shift
    4
    """

    def __init__(
        self,
        noise_floor: float = 0.0,
        shift_threshold: int = 1,
        window: int = 5,
    ) -> None:
        if noise_floor < 0:
            raise ConfigurationError(f"noise_floor must be >= 0, got {noise_floor}")
        if shift_threshold < 1:
            raise ConfigurationError(f"shift_threshold must be >= 1, got {shift_threshold}")
        if window < 1:
            raise ConfigurationError(f"window must be >= 1, got {window}")
        self.noise_floor = noise_floor
        self.shift_threshold = shift_threshold
        self.window = window
        self._recent: deque[int] = deque(maxlen=window)
        self._round_index = -1
        self._alerts: list[MonitorAlert] = []

    # ------------------------------------------------------------------
    def top_occupied_bit(self, bit_means: np.ndarray) -> int:
        """Highest bit index whose mean clears the noise floor (-1 if none)."""
        means = np.asarray(bit_means, dtype=np.float64)
        occupied = np.flatnonzero(means > self.noise_floor)
        return int(occupied[-1]) if occupied.size else -1

    def update(self, bit_means: np.ndarray) -> MonitorAlert | None:
        """Record one round's bit means; return an alert if the bound moved."""
        self._round_index += 1
        observed = self.top_occupied_bit(bit_means)
        alert: MonitorAlert | None = None
        if len(self._recent) == self.window:
            baseline = int(np.median(list(self._recent)))
            shift = observed - baseline
            if abs(shift) >= self.shift_threshold:
                direction = "grew" if shift > 0 else "shrank"
                bound = float(2.0 ** (observed + 1) - 1) if observed >= 0 else 0.0
                alert = MonitorAlert(
                    round_index=self._round_index,
                    baseline_bit=baseline,
                    observed_bit=observed,
                    shift=shift,
                    upper_bound=bound,
                    message=(
                        f"round {self._round_index}: top occupied bit {direction} "
                        f"from {baseline} to {observed} (data bound now <= {bound:g}); "
                        "possible heavy tail or distribution shift"
                    ),
                )
                self._alerts.append(alert)
                # Surface the shift in flight-recorder timelines and health
                # rules: a zero-duration marker span plus a counter.
                with get_tracer().span(
                    "monitor.shift",
                    {
                        "round_index": alert.round_index,
                        "baseline_bit": alert.baseline_bit,
                        "observed_bit": alert.observed_bit,
                        "shift": alert.shift,
                        "upper_bound": alert.upper_bound,
                    },
                ):
                    pass
                metrics = get_metrics()
                if metrics.enabled:
                    metrics.counter("monitor_shifts_total").inc()
        self._recent.append(observed)
        return alert

    # ------------------------------------------------------------------
    @property
    def current_upper_bound(self) -> float:
        """Latest implied upper bound on the data, in encoded units."""
        if not self._recent:
            return 0.0
        top = self._recent[-1]
        return float(2.0 ** (top + 1) - 1) if top >= 0 else 0.0

    @property
    def alerts(self) -> tuple[MonitorAlert, ...]:
        """All alerts emitted so far, in order."""
        return tuple(self._alerts)

    @property
    def rounds_observed(self) -> int:
        return self._round_index + 1
