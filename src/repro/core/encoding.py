"""Fixed-point encoding and binary decomposition of client values.

Bit-pushing (paper Section 3.1) operates on *b*-bit non-negative integers.
Real-valued client data is first mapped onto a fixed-point grid

    q = round((x - offset) / scale),        q in [0, 2**n_bits - 1],

and the protocol then samples individual binary digits of ``q``.  This module
owns that mapping plus all bit-level helpers:

* :class:`FixedPointEncoder` -- encode/decode, clipping (winsorization, as
  recommended in Section 4.3 of the paper for heavy-tailed telemetry), bit
  extraction, and reconstruction of a mean from per-bit means;
* :func:`extract_bit`, :func:`bit_matrix`, :func:`bit_means` -- free functions
  over already-encoded integer arrays;
* :func:`required_bits` -- the smallest bit depth that represents a value.

The linear-decomposition identity the whole protocol rests on is

    mean(x) = sum_j 2**j * mean(bit_j(x)),

which holds exactly for non-negative integers (paper Eq. 1).  Signed data is
handled by offsetting into the non-negative range rather than by a sign bit,
because signed binary expansions are *not* linear in the sign bit (paper,
footnote 1).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.exceptions import ConfigurationError, EncodingError

__all__ = [
    "FixedPointEncoder",
    "extract_bit",
    "bit_matrix",
    "bit_means",
    "mean_from_bit_means",
    "required_bits",
]

#: Largest bit depth supported.  uint64 arithmetic bounds us at 63 usable
#: bits (we avoid the sign ambiguity of the 64th bit entirely).
MAX_BITS = 63


def required_bits(max_value: int) -> int:
    """Return the smallest ``b`` with ``max_value < 2**b``.

    >>> required_bits(0), required_bits(1), required_bits(255), required_bits(256)
    (1, 1, 8, 9)
    """
    if max_value < 0:
        raise ValueError(f"max_value must be non-negative, got {max_value}")
    return max(1, int(max_value).bit_length())


def extract_bit(encoded: np.ndarray, j: int) -> np.ndarray:
    """Return bit ``j`` (LSB = 0) of each value in ``encoded`` as a 0/1 array."""
    if j < 0 or j >= MAX_BITS:
        raise ValueError(f"bit index {j} outside [0, {MAX_BITS})")
    enc = np.asarray(encoded, dtype=np.uint64)
    return ((enc >> np.uint64(j)) & np.uint64(1)).astype(np.uint8)


def bit_matrix(encoded: np.ndarray, n_bits: int) -> np.ndarray:
    """Return an ``(n, n_bits)`` 0/1 matrix; column ``j`` is bit ``j``.

    Column order is LSB-first, matching the ``2**j`` weights used throughout.
    """
    if n_bits <= 0 or n_bits > MAX_BITS:
        raise ValueError(f"n_bits must be in [1, {MAX_BITS}], got {n_bits}")
    enc = np.asarray(encoded, dtype=np.uint64)
    shifts = np.arange(n_bits, dtype=np.uint64)
    return ((enc[:, None] >> shifts[None, :]) & np.uint64(1)).astype(np.uint8)


def bit_means(encoded: np.ndarray, n_bits: int) -> np.ndarray:
    """Return the exact per-bit means of ``encoded`` (length ``n_bits``).

    This is the ground-truth quantity the protocol estimates: entry ``j`` is
    the fraction of clients whose value has bit ``j`` set.
    """
    enc = np.asarray(encoded, dtype=np.uint64)
    if enc.size == 0:
        raise EncodingError("cannot compute bit means of an empty array")
    return bit_matrix(enc, n_bits).mean(axis=0)


def mean_from_bit_means(means: np.ndarray) -> float:
    """Reconstruct an (encoded-domain) mean from per-bit means.

    Implements the linear decomposition ``sum_j 2**j * m_j`` (paper Eq. 1).
    """
    means = np.asarray(means, dtype=np.float64)
    weights = np.exp2(np.arange(means.size))
    return float(weights @ means)


@dataclass(frozen=True)
class FixedPointEncoder:
    """Map real values onto a ``n_bits``-bit unsigned fixed-point grid.

    Parameters
    ----------
    n_bits:
        Bit depth ``b``; encoded values live in ``[0, 2**b - 1]``.
    scale:
        Grid resolution.  ``scale=1`` encodes integers directly; smaller
        scales give sub-integer resolution at the cost of dynamic range.
    offset:
        Value mapped to encoded 0.  Set ``offset=L`` to handle inputs from a
        signed or shifted range ``[L, H]``.
    clip:
        If true (the default), out-of-range inputs are winsorized to the
        representable range -- the deployment-recommended behaviour for
        heavy-tailed metrics (paper Section 4.3).  If false, out-of-range
        inputs raise :class:`EncodingError`.

    Examples
    --------
    >>> enc = FixedPointEncoder(n_bits=8)
    >>> enc.encode([3.2, 300.0])          # 300 clips to 255
    array([  3, 255], dtype=uint64)
    >>> enc.decode(enc.encode([42.0]))
    array([42.])
    """

    n_bits: int
    scale: float = 1.0
    offset: float = 0.0
    clip: bool = True
    # Derived, filled in __post_init__.
    max_encoded: int = field(init=False, repr=False)
    #: Reconstruction weights ``2**j`` (read-only view, LSB-first).  Cached
    #: here because every estimate ends with ``powers @ bit_means`` and the
    #: vector depends only on ``n_bits``.  Excluded from comparison/hashing
    #: (an ndarray field would break the generated ``__eq__``).
    powers: np.ndarray = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        if not (1 <= self.n_bits <= MAX_BITS):
            raise ConfigurationError(f"n_bits must be in [1, {MAX_BITS}], got {self.n_bits}")
        if not np.isfinite(self.scale) or self.scale <= 0:
            raise ConfigurationError(f"scale must be a positive finite float, got {self.scale}")
        if not np.isfinite(self.offset):
            raise ConfigurationError(f"offset must be finite, got {self.offset}")
        object.__setattr__(self, "max_encoded", (1 << self.n_bits) - 1)
        powers = np.exp2(np.arange(self.n_bits))
        powers.setflags(write=False)
        object.__setattr__(self, "powers", powers)

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def for_range(cls, low: float, high: float, n_bits: int, clip: bool = True) -> "FixedPointEncoder":
        """Encoder spanning ``[low, high]`` with ``n_bits`` of resolution.

        ``low`` maps to encoded 0 and ``high`` to ``2**n_bits - 1``.
        """
        if not (np.isfinite(low) and np.isfinite(high)) or high <= low:
            raise ConfigurationError(f"need finite low < high, got [{low}, {high}]")
        scale = (high - low) / ((1 << n_bits) - 1)
        return cls(n_bits=n_bits, scale=scale, offset=low, clip=clip)

    @classmethod
    def for_integers(cls, n_bits: int, clip: bool = True) -> "FixedPointEncoder":
        """Unit-scale encoder for non-negative integers below ``2**n_bits``."""
        return cls(n_bits=n_bits, scale=1.0, offset=0.0, clip=clip)

    def widened(self, n_bits: int) -> "FixedPointEncoder":
        """Return a copy with a different bit depth but identical grid.

        Used by variance estimation, which squares values and therefore needs
        roughly twice the bit depth at the same resolution.
        """
        return FixedPointEncoder(n_bits=n_bits, scale=self.scale, offset=self.offset, clip=self.clip)

    # ------------------------------------------------------------------
    # Encode / decode
    # ------------------------------------------------------------------
    def encode(self, values: np.ndarray) -> np.ndarray:
        """Quantize ``values`` to the fixed-point grid (uint64 array)."""
        vals = np.asarray(values, dtype=np.float64)
        if vals.size and not np.all(np.isfinite(vals)):
            raise EncodingError("cannot encode non-finite values")
        quantized = np.rint((vals - self.offset) / self.scale)
        if self.clip:
            quantized = np.clip(quantized, 0, self.max_encoded)
        else:
            out_of_range = (quantized < 0) | (quantized > self.max_encoded)
            if np.any(out_of_range):
                bad = vals[out_of_range][:3]
                raise EncodingError(
                    f"{int(out_of_range.sum())} value(s) outside representable range "
                    f"[{self.offset}, {self.decode_scalar(self.max_encoded)}], e.g. {bad.tolist()}"
                )
        return quantized.astype(np.uint64)

    def decode(self, encoded: np.ndarray) -> np.ndarray:
        """Map encoded integers back to the real domain."""
        enc = np.asarray(encoded, dtype=np.float64)
        return enc * self.scale + self.offset

    def decode_scalar(self, encoded: float) -> float:
        """Decode one (possibly fractional) encoded-domain quantity.

        Fractional inputs arise naturally: the protocol's estimate of the
        encoded mean is a weighted sum of bit means and is rarely integral.
        """
        return float(encoded) * self.scale + self.offset

    # ------------------------------------------------------------------
    # Bit-level views
    # ------------------------------------------------------------------
    def bit(self, encoded: np.ndarray, j: int) -> np.ndarray:
        """Bit ``j`` of each encoded value (0/1 uint8 array)."""
        if j >= self.n_bits:
            raise ValueError(f"bit index {j} >= n_bits {self.n_bits}")
        return extract_bit(encoded, j)

    def bits(self, encoded: np.ndarray) -> np.ndarray:
        """Full ``(n, n_bits)`` bit matrix of the encoded values."""
        return bit_matrix(encoded, self.n_bits)

    def true_bit_means(self, values: np.ndarray) -> np.ndarray:
        """Ground-truth bit means of real ``values`` after encoding."""
        return bit_means(self.encode(values), self.n_bits)

    def mean_from_bit_means(self, means: np.ndarray) -> float:
        """Real-domain mean implied by estimated per-bit means."""
        means = np.asarray(means, dtype=np.float64)
        if means.size != self.n_bits:
            raise ValueError(f"expected {self.n_bits} bit means, got {means.size}")
        return self.decode_scalar(float(self.powers @ means))

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def representable_max(self) -> float:
        """Largest real value representable without clipping."""
        return self.decode_scalar(self.max_encoded)

    @property
    def representable_min(self) -> float:
        """Smallest real value representable without clipping (= offset)."""
        return self.offset

    def quantization_error_bound(self) -> float:
        """Worst-case absolute rounding error per value (half a grid step)."""
        return self.scale / 2.0
