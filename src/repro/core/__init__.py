"""Core bit-pushing protocols (the paper's primary contribution).

Public surface:

* encoding: :class:`FixedPointEncoder` and bit-level helpers;
* schedules & assignment: :class:`BitSamplingSchedule`,
  :func:`central_assignment`, :func:`local_assignment`;
* estimators: :class:`BasicBitPushing` (Algorithm 1),
  :class:`AdaptiveBitPushing` (Algorithm 2), :class:`VarianceEstimator`
  (Section 3.4), plus the :func:`estimate_mean` convenience;
* DP support: :func:`squash_bit_means` and friends (Section 3.3);
* operations: :class:`HighBitMonitor` for heavy-tail detection;
* scale: :class:`ClientBatch` and the chunk-streamed columnar kernels
  (:func:`elicit_values`, :func:`accumulate_bit_reports`,
  :func:`collect_client_reports`, tuned by ``REPRO_BATCH_CHUNK`` via
  :func:`batch_chunk_size`).
"""

from repro.core.adaptive import AdaptiveBitPushing
from repro.core.aggregates import (
    GeometricMeanEstimate,
    GeometricMeanEstimator,
    MomentEstimate,
    MomentEstimator,
    kurtosis,
    skewness,
)
from repro.core.basic import BasicBitPushing, estimate_mean
from repro.core.client_plane import (
    ClientBatch,
    accumulate_bit_reports,
    batch_chunk_size,
    collect_client_reports,
    elicit_values,
)
from repro.core.covariance import CovarianceEstimate, CovarianceEstimator
from repro.core.histogram import FederatedHistogram, HistogramEstimate
from repro.core.encoding import (
    FixedPointEncoder,
    bit_matrix,
    bit_means,
    extract_bit,
    mean_from_bit_means,
    required_bits,
)
from repro.core.monitor import HighBitMonitor, MonitorAlert
from repro.core.quantile import QuantileEstimate, QuantileEstimator
from repro.core.protocol import (
    BitPerturbation,
    bit_means_from_stats,
    collect_bit_reports,
    combine_round_stats,
    optimal_probabilities_bound,
    theoretical_variance,
)
from repro.core.results import MeanEstimate, RoundSummary, VarianceEstimate
from repro.core.sampling import (
    BitSamplingSchedule,
    apportion_counts,
    central_assignment,
    local_assignment,
    multi_bit_assignment,
)
from repro.core.squashing import (
    per_bit_squash_thresholds,
    rr_noise_std,
    squash_bit_means,
    threshold_from_noise_multiple,
)
from repro.core.variance import VarianceEstimator
from repro.core.vector import VectorMeanEstimate, VectorMeanEstimator

__all__ = [
    "AdaptiveBitPushing",
    "BasicBitPushing",
    "BitPerturbation",
    "BitSamplingSchedule",
    "ClientBatch",
    "CovarianceEstimate",
    "CovarianceEstimator",
    "FederatedHistogram",
    "FixedPointEncoder",
    "GeometricMeanEstimate",
    "GeometricMeanEstimator",
    "HighBitMonitor",
    "HistogramEstimate",
    "MeanEstimate",
    "MomentEstimate",
    "MomentEstimator",
    "QuantileEstimate",
    "QuantileEstimator",
    "MonitorAlert",
    "RoundSummary",
    "VarianceEstimate",
    "VarianceEstimator",
    "VectorMeanEstimate",
    "VectorMeanEstimator",
    "accumulate_bit_reports",
    "apportion_counts",
    "batch_chunk_size",
    "bit_matrix",
    "bit_means",
    "bit_means_from_stats",
    "central_assignment",
    "collect_bit_reports",
    "collect_client_reports",
    "combine_round_stats",
    "elicit_values",
    "estimate_mean",
    "extract_bit",
    "kurtosis",
    "local_assignment",
    "mean_from_bit_means",
    "multi_bit_assignment",
    "optimal_probabilities_bound",
    "per_bit_squash_thresholds",
    "required_bits",
    "rr_noise_std",
    "skewness",
    "squash_bit_means",
    "theoretical_variance",
    "threshold_from_noise_multiple",
]
