"""Round mechanics shared by every bit-pushing variant.

This module implements "one round of Algorithm 1" as pure functions over
numpy arrays: take encoded client values and an assignment of clients to bit
indices, extract the assigned bits, optionally pass them through a local
privacy perturbation, and aggregate into per-bit sums and counts.  The basic
and adaptive estimators, the LDP wrapper, the federated simulator, and the
poisoning attacks all build on these primitives, so the protocol logic lives
exactly once.

Privacy perturbations are duck-typed via :class:`BitPerturbation` so the core
package does not depend on :mod:`repro.privacy` (the dependency points the
other way: privacy mechanisms *implement* this protocol).
"""

from __future__ import annotations

from typing import Protocol, runtime_checkable

import numpy as np

from repro.core.sampling import BitSamplingSchedule
from repro.exceptions import ProtocolError
from repro.rng import ensure_rng

__all__ = [
    "BitPerturbation",
    "collect_bit_reports",
    "bit_means_from_stats",
    "combine_round_stats",
    "theoretical_variance",
    "optimal_probabilities_bound",
]


@runtime_checkable
class BitPerturbation(Protocol):
    """Local perturbation applied to each bit before it leaves the client.

    Implementations (e.g. :class:`repro.privacy.RandomizedResponse`) must be
    *unbiasable*: ``unbias_bit_means`` applied to the mean of perturbed bits
    must be an unbiased estimate of the mean of the true bits.

    Implementations must also consume their randomness *element-sequentially
    in C order* (one draw per bit, row-major -- e.g. ``gen.random(bits.shape)``)
    so that perturbing a ``(n, b)`` array in row chunks yields the identical
    stream as one full-array call.  The chunk-streamed columnar kernels in
    :mod:`repro.core.client_plane` rely on this to stay bit-identical to the
    object path for any chunk size.
    """

    def perturb_bits(self, bits: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        """Return the privatized 0/1 reports for true ``bits``."""
        ...

    def unbias_bit_means(self, means: np.ndarray) -> np.ndarray:
        """Map raw perturbed-report means back to unbiased bit-mean estimates."""
        ...


def collect_bit_reports(
    encoded: np.ndarray,
    n_bits: int,
    assignment: np.ndarray,
    perturbation: BitPerturbation | None = None,
    rng: np.random.Generator | int | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Run one collection round and return raw per-bit ``(sums, counts)``.

    Parameters
    ----------
    encoded:
        uint64 array of encoded client values, length ``n``.
    n_bits:
        Bit depth; assignments must index into ``[0, n_bits)``.
    assignment:
        Either shape ``(n,)`` (each client reports one bit) or
        ``(n, b_send)`` (each client reports several distinct bits).
    perturbation:
        Optional local privacy mechanism applied to the true bits.
    rng:
        Randomness for the perturbation (ignored if ``perturbation is None``).

    Returns
    -------
    sums, counts:
        ``sums[j]`` is the sum of (possibly perturbed) reported bits for bit
        ``j``; ``counts[j]`` is how many clients reported bit ``j``.  These
        are *raw* statistics -- unbiasing happens in
        :func:`bit_means_from_stats`.
    """
    enc = np.asarray(encoded, dtype=np.uint64)
    assign = np.asarray(assignment, dtype=np.int64)
    if assign.ndim == 1:
        assign = assign.reshape(-1, 1)
    if assign.ndim != 2 or assign.shape[0] != enc.shape[0]:
        raise ProtocolError(
            f"assignment shape {assign.shape} incompatible with {enc.shape[0]} clients"
        )
    if assign.size and (assign.min() < 0 or assign.max() >= n_bits):
        raise ProtocolError(f"assignment indexes outside [0, {n_bits})")

    # Each client extracts its assigned bit(s) from its own value.
    reported = ((enc[:, None] >> assign.astype(np.uint64)) & np.uint64(1)).astype(np.float64)
    if perturbation is not None:
        gen = ensure_rng(rng)
        reported = np.asarray(
            perturbation.perturb_bits(reported.astype(np.uint8), gen), dtype=np.float64
        )
        if reported.shape != assign.shape:
            raise ProtocolError(
                f"perturbation changed report shape from {assign.shape} to {reported.shape}"
            )

    flat_bits = assign.ravel()
    flat_reports = reported.ravel()
    sums = np.bincount(flat_bits, weights=flat_reports, minlength=n_bits)
    counts = np.bincount(flat_bits, minlength=n_bits).astype(np.int64)
    return sums, counts


def bit_means_from_stats(
    sums: np.ndarray,
    counts: np.ndarray,
    perturbation: BitPerturbation | None = None,
) -> np.ndarray:
    """Turn raw ``(sums, counts)`` into unbiased per-bit mean estimates.

    Bits with zero reports get mean 0.0 -- the protocol's convention that an
    unsampled bit contributes nothing (its schedule weight was ~0 precisely
    because it was believed empty).  When a perturbation is supplied, its
    debiasing map is applied to the raw means of bits that *were* sampled.
    """
    sums = np.asarray(sums, dtype=np.float64)
    counts = np.asarray(counts, dtype=np.int64)
    if sums.shape != counts.shape:
        raise ProtocolError(f"sums shape {sums.shape} != counts shape {counts.shape}")
    means = np.zeros_like(sums)
    sampled = counts > 0
    means[sampled] = sums[sampled] / counts[sampled]
    if perturbation is not None:
        means[sampled] = np.asarray(perturbation.unbias_bit_means(means[sampled]))
    return means


def combine_round_stats(
    unbiased_means: list[np.ndarray],
    counts: list[np.ndarray],
) -> tuple[np.ndarray, np.ndarray]:
    """Pool per-round bit means, weighting each round by its report counts.

    Implements the "caching" combination of Algorithm 2 line 9: the pooled
    mean for bit ``j`` is ``sum_r c_rj * m_rj / sum_r c_rj``.  Rounds with no
    reports on a bit contribute nothing to it; a bit unsampled in every round
    keeps mean 0.0.
    """
    if len(unbiased_means) != len(counts) or not unbiased_means:
        raise ProtocolError("need the same non-zero number of mean and count vectors")
    total_counts = np.sum(np.asarray(counts, dtype=np.float64), axis=0)
    weighted = np.sum(
        [m * c for m, c in zip(unbiased_means, counts)], axis=0, dtype=np.float64
    )
    pooled = np.zeros_like(weighted)
    sampled = total_counts > 0
    pooled[sampled] = weighted[sampled] / total_counts[sampled]
    return pooled, total_counts.astype(np.int64)


# ----------------------------------------------------------------------
# Analytic companions (Lemma 3.1 / Eq. 7) -- used by tests and docs.
# ----------------------------------------------------------------------

def theoretical_variance(
    bit_means: np.ndarray,
    schedule: BitSamplingSchedule,
    n_clients: int,
    b_send: int = 1,
) -> float:
    """Lemma 3.1 variance of the basic estimator, in the encoded domain.

    ``V[X] = (1 / (n * b_send)) * sum_j 4**j m_j (1 - m_j) / p_j``; bits with
    ``p_j = 0`` must have ``m_j (1 - m_j) = 0`` or the variance is infinite.
    """
    means = np.asarray(bit_means, dtype=np.float64)
    probs = schedule.probabilities
    if means.size != probs.size:
        raise ValueError("bit_means and schedule lengths differ")
    beta = np.exp2(2.0 * np.arange(means.size)) * means * (1.0 - means)
    unsampled_active = (probs == 0.0) & (beta > 0.0)
    if np.any(unsampled_active):
        return float("inf")
    with np.errstate(divide="ignore", invalid="ignore"):
        terms = np.where(beta > 0.0, beta / np.where(probs > 0.0, probs, 1.0), 0.0)
    return float(terms.sum() / (n_clients * b_send))


def optimal_probabilities_bound(n_bits: int) -> BitSamplingSchedule:
    """The worst-case-optimal schedule ``p_j = 2**j / (2**b - 1)`` (Eq. 7).

    Derived by bounding each ``m_j (1 - m_j)`` by 1/4 in Lemma 3.3's optimum.
    """
    return BitSamplingSchedule.weighted(n_bits, alpha=1.0)
