"""Quantile (median / percentile) estimation via bitwise prefix descent.

Section 4.3 of the paper observes that for skewed deployment metrics
"robust statistics are more appropriate, such as the median and
percentiles".  Bit-pushing's machinery extends there naturally: the
q-quantile of ``b``-bit values can be located one binary digit at a time,
from the most significant bit down.  At step ``j`` the server holds a
prefix ``P`` (bits above ``j`` already decided) and asks a fresh cohort
slice the single comparison bit

    "is your encoded value >= P | 2**j ?"

If at least a ``1 - q`` fraction says yes, the quantile's bit ``j`` is 1.
After ``b`` steps the prefix *is* the quantile (to encoder resolution).

Privacy shape matches the rest of the library: each participating client
reveals exactly one bit -- here a threshold bit, which the paper flags as
potentially sensitive ("disclosing whether a value is above or below a
threshold"), so the optional randomized-response guarantee matters more
than for digit bits.  The server debiases each round's fraction before
comparing to ``1 - q``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.core.encoding import FixedPointEncoder
from repro.core.protocol import BitPerturbation
from repro.exceptions import ConfigurationError
from repro.rng import ensure_rng

__all__ = ["QuantileEstimate", "QuantileEstimator"]


@dataclass(frozen=True)
class QuantileEstimate:
    """A quantile estimate plus the per-bit decision trail."""

    value: float
    encoded_value: int
    q: float
    #: Fraction of each round's cohort reporting "my value >= candidate",
    #: after debiasing; index 0 is the most significant bit's round.
    round_fractions: tuple[float, ...]
    #: Clients consumed per round.
    round_sizes: tuple[int, ...]
    n_clients: int
    metadata: dict[str, Any] = field(default_factory=dict)

    def __float__(self) -> float:  # pragma: no cover - trivial
        return self.value


class QuantileEstimator:
    """Estimate the q-quantile of client values, one comparison bit each.

    Parameters
    ----------
    encoder:
        Fixed-point encoding; the answer's resolution is one grid step.
    q:
        Quantile level in (0, 1); 0.5 is the median.
    perturbation:
        Optional randomized response on the comparison bit.

    Examples
    --------
    >>> import numpy as np
    >>> rng = np.random.default_rng(0)
    >>> values = rng.normal(300.0, 60.0, 50_000).clip(0)
    >>> est = QuantileEstimator(FixedPointEncoder.for_integers(10), q=0.5)
    >>> bool(abs(est.estimate(values, rng).value - np.median(values)) < 15)
    True
    """

    def __init__(
        self,
        encoder: FixedPointEncoder,
        q: float = 0.5,
        perturbation: BitPerturbation | None = None,
    ) -> None:
        if not 0.0 < q < 1.0:
            raise ConfigurationError(f"q must be in (0, 1), got {q}")
        self.encoder = encoder
        self.q = q
        self.perturbation = perturbation

    # ------------------------------------------------------------------
    def estimate(
        self,
        values: np.ndarray,
        rng: np.random.Generator | int | None = None,
    ) -> QuantileEstimate:
        """Locate the q-quantile in ``n_bits`` one-bit rounds."""
        gen = ensure_rng(rng)
        vals = np.asarray(values, dtype=np.float64)
        n_clients = int(vals.size)
        n_bits = self.encoder.n_bits
        if n_clients < n_bits:
            raise ConfigurationError(
                f"need at least one client per bit round ({n_bits}), got {n_clients}"
            )
        encoded = self.encoder.encode(vals)

        # Fresh cohort slice per round: shuffle once, slice b times.
        order = gen.permutation(n_clients)
        slices = np.array_split(order, n_bits)

        prefix = 0
        fractions: list[float] = []
        sizes: list[int] = []
        for round_index, j in enumerate(range(n_bits - 1, -1, -1)):
            cohort = encoded[slices[round_index]]
            candidate = prefix | (1 << j)
            bits = (cohort >= candidate).astype(np.uint8)
            if self.perturbation is not None:
                bits = self.perturbation.perturb_bits(bits, gen)
            fraction = float(bits.mean())
            if self.perturbation is not None:
                fraction = float(
                    self.perturbation.unbias_bit_means(np.array([fraction]))[0]
                )
            fractions.append(fraction)
            sizes.append(int(cohort.size))
            if fraction >= 1.0 - self.q:
                prefix = candidate

        return QuantileEstimate(
            value=self.encoder.decode_scalar(prefix),
            encoded_value=prefix,
            q=self.q,
            round_fractions=tuple(fractions),
            round_sizes=tuple(sizes),
            n_clients=n_clients,
            metadata={"ldp": self.perturbation is not None, "rounds": n_bits},
        )
