"""Variance estimation via bit-pushing -- paper Section 3.4.

The empirical variance reduces to mean estimations of derived values, and
the paper analyzes two decompositions (Lemma 3.5):

* ``"moments"`` -- estimate ``E[X^2]`` and ``E[X]`` on disjoint halves of
  the cohort and combine as ``E[X^2] - E[X]^2``.  Estimation variance scales
  like ``(sigma^2 + xbar^2)^2 / n``: the squared-mean term never goes away.
* ``"centered"`` -- spend a fraction of the cohort estimating the mean
  ``m``, then have the remaining clients bit-push ``(x - m)^2`` directly.
  Estimation variance scales like ``(sigma^2 + xbar^2/n)^2 / n`` -- the
  preferred variant, and our default.

Both run entirely on the encoded (integer) grid: for an encoder with
resolution ``scale``, ``Var[x] = scale**2 * Var[q]``, so the derived values
are squares of ``n_bits``-bit integers and need a ``2 * n_bits``-bit
encoding.  Either the basic or the adaptive estimator can serve as the inner
mean engine.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.core.adaptive import AdaptiveBitPushing
from repro.core.basic import BasicBitPushing
from repro.core.encoding import MAX_BITS, FixedPointEncoder
from repro.core.protocol import BitPerturbation
from repro.core.results import MeanEstimate, VarianceEstimate
from repro.exceptions import ConfigurationError
from repro.rng import ensure_rng

__all__ = ["VarianceEstimator"]

_METHODS = ("centered", "moments")
_INNER = ("basic", "adaptive")


class VarianceEstimator:
    """Estimate a population variance from one-bit-per-client reports.

    Parameters
    ----------
    encoder:
        Fixed-point encoding of the *raw* client values; the estimator
        derives the wider encoding needed for squares automatically.
    method:
        ``"centered"`` (default, lower estimation variance per Lemma 3.5)
        or ``"moments"``.
    inner:
        Mean-estimation engine for each phase: ``"adaptive"`` (default) or
        ``"basic"``.
    mean_fraction:
        Fraction of the cohort used for the mean phase (both methods need a
        mean; default 0.5).
    perturbation:
        Optional local DP mechanism, forwarded to every inner estimator.
    inner_kwargs:
        Extra keyword arguments forwarded to the inner estimator
        constructors (e.g. ``{"alpha": 1.0}``).

    Examples
    --------
    >>> import numpy as np
    >>> rng = np.random.default_rng(3)
    >>> values = rng.normal(500.0, 100.0, size=200_000)
    >>> enc = FixedPointEncoder.for_integers(n_bits=10)
    >>> est = VarianceEstimator(enc, method="centered")
    >>> rel_err = abs(est.estimate(values, rng=rng).value - values.var()) / values.var()
    >>> bool(rel_err < 0.25)
    True
    """

    def __init__(
        self,
        encoder: FixedPointEncoder,
        method: str = "centered",
        inner: str = "adaptive",
        mean_fraction: float = 0.5,
        perturbation: BitPerturbation | None = None,
        inner_kwargs: dict[str, Any] | None = None,
    ) -> None:
        if method not in _METHODS:
            raise ConfigurationError(f"method must be one of {_METHODS}, got {method!r}")
        if inner not in _INNER:
            raise ConfigurationError(f"inner must be one of {_INNER}, got {inner!r}")
        if not 0.0 < mean_fraction < 1.0:
            raise ConfigurationError(f"mean_fraction must be in (0, 1), got {mean_fraction}")
        square_bits = 2 * encoder.n_bits
        if square_bits > MAX_BITS:
            raise ConfigurationError(
                f"variance estimation needs {square_bits} bits for squares; "
                f"encoder n_bits={encoder.n_bits} is too wide (max {MAX_BITS // 2})"
            )
        self.encoder = encoder
        self.method = method
        self.inner = inner
        self.mean_fraction = mean_fraction
        self.perturbation = perturbation
        self.inner_kwargs = dict(inner_kwargs or {})

    # ------------------------------------------------------------------
    def estimate(
        self,
        values: np.ndarray,
        rng: np.random.Generator | int | None = None,
    ) -> VarianceEstimate:
        """Estimate ``Var[values]`` using only one bit per participating client."""
        gen = ensure_rng(rng)
        vals = np.asarray(values, dtype=np.float64)
        n_clients = int(vals.size)
        if n_clients < 4:
            raise ConfigurationError(f"variance estimation needs >= 4 clients, got {n_clients}")

        # Work on the encoded grid throughout; rescale at the end.
        encoded = self.encoder.encode(vals).astype(np.float64)
        order = gen.permutation(n_clients)
        n_mean = min(max(int(round(self.mean_fraction * n_clients)), 2), n_clients - 2)
        mean_cohort = encoded[order[:n_mean]]
        square_cohort = encoded[order[n_mean:]]

        mean_estimator = self._make_inner(self.encoder)
        mean_est = mean_estimator.estimate_encoded(mean_cohort.astype(np.uint64), gen)
        mean_hat = mean_est.encoded_value

        square_encoder = FixedPointEncoder.for_integers(2 * self.encoder.n_bits)
        square_estimator = self._make_inner(square_encoder)

        if self.method == "moments":
            derived = square_cohort**2
            second = square_estimator.estimate(derived, gen)
            raw_var_encoded = second.encoded_value - mean_hat**2
            second_moment = second.encoded_value
        else:  # centered
            derived = (square_cohort - mean_hat) ** 2
            second = square_estimator.estimate(derived, gen)
            raw_var_encoded = second.encoded_value
            second_moment = second.encoded_value

        raw_var = raw_var_encoded * self.encoder.scale**2
        return VarianceEstimate(
            value=max(raw_var, 0.0),
            raw_value=raw_var,
            mean=mean_est,
            method=self.method,
            second_moment=second_moment * self.encoder.scale**2,
            n_clients=n_clients,
            metadata={
                "inner": self.inner,
                "mean_fraction": self.mean_fraction,
                "ldp": self.perturbation is not None,
                "square_n_bits": square_encoder.n_bits,
            },
        )

    # ------------------------------------------------------------------
    def _make_inner(self, encoder: FixedPointEncoder) -> "BasicBitPushing | AdaptiveBitPushing":
        if self.inner == "basic":
            return BasicBitPushing(encoder, perturbation=self.perturbation, **self.inner_kwargs)
        return AdaptiveBitPushing(encoder, perturbation=self.perturbation, **self.inner_kwargs)

    # ------------------------------------------------------------------
    @staticmethod
    def mean_and_variance(
        mean_est: MeanEstimate, var_est: VarianceEstimate
    ) -> tuple[float, float]:
        """Convenience accessor for feature-normalization use cases.

        Federated learning's feature normalization (Section 3.4) needs the
        ``(mean, variance)`` pair; this pulls both point estimates out of
        their result records.
        """
        return mean_est.value, var_est.value
