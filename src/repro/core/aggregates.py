"""Extended aggregates via bit-pushing (paper Section 3.4, closing remark).

The paper notes that beyond mean and variance, "other functions, e.g.,
higher moments, products and geometric means, can also be approximated via
bit-pushing".  This module implements those extensions on top of the same
one-bit primitives:

* :class:`MomentEstimator` -- raw or central moments of any small order.
  Central odd moments are signed, which the unsigned encoding cannot carry;
  we split the cohort by the sign of the centred value (each client knows
  its own sign -- disclosing it costs one extra bit, which callers should
  meter) and combine the two unsigned sub-aggregates.
* :class:`GeometricMeanEstimator` -- the geometric mean via bit-pushing of
  log2-transformed values: ``geomean(x) = 2**mean(log2 x)``.  The same
  machinery yields the (log of the) product.
* :func:`skewness` / :func:`kurtosis` -- standardized-moment conveniences
  built from disjoint cohort splits.

All estimators keep the one-bit-per-value contract for the numeric payload
and accept the usual local-DP perturbation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.core.adaptive import AdaptiveBitPushing
from repro.core.basic import BasicBitPushing
from repro.core.encoding import MAX_BITS, FixedPointEncoder
from repro.core.protocol import BitPerturbation
from repro.core.variance import VarianceEstimator
from repro.exceptions import ConfigurationError
from repro.rng import ensure_rng

__all__ = [
    "MomentEstimate",
    "MomentEstimator",
    "GeometricMeanEstimate",
    "GeometricMeanEstimator",
    "skewness",
    "kurtosis",
]

_INNER = ("basic", "adaptive")


@dataclass(frozen=True)
class MomentEstimate:
    """A k-th (raw or central) moment estimate with provenance."""

    value: float
    order: int
    centered: bool
    mean_estimate: float
    n_clients: int
    metadata: dict[str, Any] = field(default_factory=dict)

    def __float__(self) -> float:  # pragma: no cover - trivial
        return self.value


class MomentEstimator:
    """Estimate ``E[X^k]`` or ``E[(X - E[X])^k]`` from one-bit reports.

    Parameters
    ----------
    encoder:
        Fixed-point encoding of the raw values; the k-th-power phase derives
        the ``k * n_bits``-bit encoding it needs (bounded by the 63-bit
        arithmetic limit, so ``order * n_bits <= 63``).
    order:
        Moment order ``k >= 1``.
    centered:
        Estimate the central moment (default) or the raw moment.
    inner:
        Mean engine per phase: ``"adaptive"`` (default) or ``"basic"``.
    mean_fraction:
        Cohort fraction spent estimating the mean when ``centered`` (default
        1/3; raw moments spend the whole cohort on the power phase).
    perturbation:
        Optional local DP mechanism, forwarded to every phase.
    inner_kwargs:
        Extra keyword arguments for the inner estimators.

    Examples
    --------
    >>> import numpy as np
    >>> rng = np.random.default_rng(0)
    >>> values = np.clip(rng.normal(100.0, 20.0, 200_000), 0, None)
    >>> est = MomentEstimator(FixedPointEncoder.for_integers(8), order=2)
    >>> bool(abs(est.estimate(values, rng).value - values.var()) / values.var() < 0.3)
    True
    """

    def __init__(
        self,
        encoder: FixedPointEncoder,
        order: int,
        centered: bool = True,
        inner: str = "adaptive",
        mean_fraction: float = 1.0 / 3.0,
        perturbation: BitPerturbation | None = None,
        inner_kwargs: dict[str, Any] | None = None,
    ) -> None:
        if order < 1:
            raise ConfigurationError(f"order must be >= 1, got {order}")
        if inner not in _INNER:
            raise ConfigurationError(f"inner must be one of {_INNER}, got {inner!r}")
        if not 0.0 < mean_fraction < 1.0:
            raise ConfigurationError(f"mean_fraction must be in (0, 1), got {mean_fraction}")
        power_bits = order * encoder.n_bits
        if power_bits > MAX_BITS:
            raise ConfigurationError(
                f"order {order} needs {power_bits} bits for powers of "
                f"{encoder.n_bits}-bit values; max is {MAX_BITS}"
            )
        self.encoder = encoder
        self.order = order
        self.centered = centered
        self.inner = inner
        self.mean_fraction = mean_fraction
        self.perturbation = perturbation
        self.inner_kwargs = dict(inner_kwargs or {})

    # ------------------------------------------------------------------
    def estimate(
        self,
        values: np.ndarray,
        rng: np.random.Generator | int | None = None,
    ) -> MomentEstimate:
        """Estimate the configured moment of real-valued ``values``."""
        gen = ensure_rng(rng)
        vals = np.asarray(values, dtype=np.float64)
        n_clients = int(vals.size)
        if n_clients < 4:
            raise ConfigurationError(f"moment estimation needs >= 4 clients, got {n_clients}")
        encoded = self.encoder.encode(vals).astype(np.float64)

        if not self.centered:
            value = self._power_mean(encoded, gen)
            return MomentEstimate(
                value=value * self.encoder.scale**self.order,
                order=self.order,
                centered=False,
                mean_estimate=float("nan"),
                n_clients=n_clients,
                metadata={"inner": self.inner},
            )

        # Phase 1: mean on a fraction of the cohort.
        order_idx = gen.permutation(n_clients)
        n_mean = min(max(int(round(self.mean_fraction * n_clients)), 2), n_clients - 2)
        mean_cohort = encoded[order_idx[:n_mean]]
        power_cohort = encoded[order_idx[n_mean:]]
        mean_hat = self._make_inner(self.encoder).estimate_encoded(
            mean_cohort.astype(np.uint64), gen
        ).encoded_value

        centred = power_cohort - mean_hat
        if self.order % 2 == 0:
            value = self._power_mean(np.abs(centred), gen)
        else:
            # Odd central moments are signed: partition by the sign each
            # client computes locally (one additional disclosed bit), then
            # combine the unsigned sub-aggregates.
            value = self._signed_power_mean(centred, gen)

        return MomentEstimate(
            value=value * self.encoder.scale**self.order,
            order=self.order,
            centered=True,
            mean_estimate=self.encoder.decode_scalar(mean_hat),
            n_clients=n_clients,
            metadata={"inner": self.inner, "mean_fraction": self.mean_fraction},
        )

    # ------------------------------------------------------------------
    def _power_mean(self, magnitudes: np.ndarray, gen: np.random.Generator) -> float:
        """Bit-push ``mean(magnitudes ** order)`` on the wide integer grid."""
        power_encoder = FixedPointEncoder.for_integers(self.order * self.encoder.n_bits)
        estimator = self._make_inner(power_encoder)
        return estimator.estimate(magnitudes**self.order, gen).encoded_value

    def _signed_power_mean(self, centred: np.ndarray, gen: np.random.Generator) -> float:
        positive = centred >= 0
        n = centred.size
        total = 0.0
        for sign, mask in ((1.0, positive), (-1.0, ~positive)):
            group = centred[mask]
            if group.size < 2:
                # Too few clients to aggregate privately; their worst-case
                # contribution is bounded and we drop it (documented bias
                # far below sampling noise for any real cohort).
                continue
            part = self._power_mean(np.abs(group), gen)
            total += sign * part * (group.size / n)
        return total

    def _make_inner(self, encoder: FixedPointEncoder):
        if self.inner == "basic":
            return BasicBitPushing(encoder, perturbation=self.perturbation, **self.inner_kwargs)
        return AdaptiveBitPushing(encoder, perturbation=self.perturbation, **self.inner_kwargs)


@dataclass(frozen=True)
class GeometricMeanEstimate:
    """Geometric-mean estimate, with the log-domain mean it came from."""

    value: float
    log2_mean: float
    log2_product: float
    n_clients: int

    def __float__(self) -> float:  # pragma: no cover - trivial
        return self.value


class GeometricMeanEstimator:
    """Geometric means (and products) via bit-pushing of ``log2`` values.

    ``geomean(x) = 2**mean(log2 x)`` turns a multiplicative aggregate into
    the mean of derived values, which bit-pushing handles directly.  The
    log-domain range must be configured (it is what the fixed-point grid
    spans); non-positive inputs are clipped to the smallest representable
    value.

    Parameters
    ----------
    log2_low, log2_high:
        Assumed range of ``log2(x)``.
    n_bits:
        Fixed-point resolution of the log-domain encoding.
    inner:
        ``"adaptive"`` (default) or ``"basic"`` mean engine.
    perturbation:
        Optional local DP mechanism.

    Examples
    --------
    >>> import numpy as np
    >>> rng = np.random.default_rng(1)
    >>> values = rng.lognormal(3.0, 0.5, 100_000)
    >>> est = GeometricMeanEstimator(log2_low=0.0, log2_high=10.0)
    >>> true_gm = float(np.exp(np.log(values).mean()))
    >>> abs(est.estimate(values, rng).value - true_gm) / true_gm < 0.05
    True
    """

    def __init__(
        self,
        log2_low: float,
        log2_high: float,
        n_bits: int = 12,
        inner: str = "adaptive",
        perturbation: BitPerturbation | None = None,
    ) -> None:
        if inner not in _INNER:
            raise ConfigurationError(f"inner must be one of {_INNER}, got {inner!r}")
        self.encoder = FixedPointEncoder.for_range(log2_low, log2_high, n_bits)
        self.inner = inner
        self.perturbation = perturbation

    def estimate(
        self,
        values: np.ndarray,
        rng: np.random.Generator | int | None = None,
    ) -> GeometricMeanEstimate:
        """Estimate the geometric mean of positive ``values``."""
        gen = ensure_rng(rng)
        vals = np.asarray(values, dtype=np.float64)
        if vals.size == 0:
            raise ConfigurationError("cannot estimate a geometric mean of zero clients")
        floor = 2.0**self.encoder.representable_min
        logs = np.log2(np.maximum(vals, floor))
        if self.inner == "basic":
            estimator = BasicBitPushing(self.encoder, perturbation=self.perturbation)
        else:
            estimator = AdaptiveBitPushing(self.encoder, perturbation=self.perturbation)
        log_mean = estimator.estimate(logs, gen).value
        return GeometricMeanEstimate(
            value=float(2.0**log_mean),
            log2_mean=float(log_mean),
            log2_product=float(log_mean * vals.size),
            n_clients=int(vals.size),
        )


def skewness(
    values: np.ndarray,
    encoder: FixedPointEncoder,
    rng: np.random.Generator | int | None = None,
    inner: str = "adaptive",
) -> float:
    """Standardized third moment ``mu_3 / sigma^3`` from one-bit reports.

    Splits the cohort: half feeds the variance estimator (which yields the
    mean as a by-product), half the third-central-moment estimator, so no
    client reports on more than one derived value.
    """
    gen = ensure_rng(rng)
    vals = np.asarray(values, dtype=np.float64)
    half = vals.size // 2
    order = gen.permutation(vals.size)
    var_est = VarianceEstimator(encoder, inner=inner).estimate(vals[order[:half]], gen)
    m3_est = MomentEstimator(encoder, order=3, inner=inner).estimate(vals[order[half:]], gen)
    sigma = max(var_est.value, 1e-12) ** 0.5
    return m3_est.value / sigma**3


def kurtosis(
    values: np.ndarray,
    encoder: FixedPointEncoder,
    rng: np.random.Generator | int | None = None,
    inner: str = "adaptive",
) -> float:
    """Excess kurtosis ``mu_4 / sigma^4 - 3`` from one-bit reports."""
    gen = ensure_rng(rng)
    vals = np.asarray(values, dtype=np.float64)
    half = vals.size // 2
    order = gen.permutation(vals.size)
    var_est = VarianceEstimator(encoder, inner=inner).estimate(vals[order[:half]], gen)
    m4_est = MomentEstimator(encoder, order=4, inner=inner).estimate(vals[order[half:]], gen)
    sigma2 = max(var_est.value, 1e-12)
    return m4_est.value / sigma2**2 - 3.0
