"""Result types returned by bit-pushing estimators.

These dataclasses carry not just the point estimate but the full per-bit
diagnostics (schedules, counts, sums, estimated bit means) that the adaptive
protocol, the squashing heuristic, the heavy-tail monitor, and the benchmark
harness all consume.  They are plain, immutable-ish records -- no behaviour
beyond light validation and convenience accessors.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

__all__ = ["RoundSummary", "MeanEstimate", "VarianceEstimate"]


@dataclass(frozen=True)
class RoundSummary:
    """Per-bit accounting for one round of bit collection.

    Attributes
    ----------
    probabilities:
        The sampling schedule used this round (length ``n_bits``).
    counts:
        Number of client reports received per bit.
    sums:
        Sum of *unbiased* reported bit values per bit.  Without a privacy
        perturbation these are integer counts of 1-bits; with randomized
        response they are debiased and may fall outside ``[0, counts]``.
    bit_means:
        ``sums / counts`` with zero-count bits reported as 0.0.
    n_clients:
        Cohort size that participated in the round.
    """

    probabilities: np.ndarray
    counts: np.ndarray
    sums: np.ndarray
    bit_means: np.ndarray
    n_clients: int

    def __post_init__(self) -> None:
        sizes = {self.probabilities.size, self.counts.size, self.sums.size, self.bit_means.size}
        if len(sizes) != 1:
            raise ValueError(f"inconsistent per-bit array lengths: {sizes}")

    @property
    def n_bits(self) -> int:
        return int(self.counts.size)

    @property
    def total_reports(self) -> int:
        return int(self.counts.sum())


@dataclass(frozen=True)
class MeanEstimate:
    """A mean estimate plus everything needed to audit how it was produced.

    Attributes
    ----------
    value:
        The estimate in the caller's (real) domain.
    encoded_value:
        The same estimate on the fixed-point grid, before decoding.
    bit_means:
        Final per-bit mean estimates (after unbiasing, combination across
        rounds, and squashing, in that order).
    counts:
        Total reports per bit across all rounds.
    n_clients:
        Total cohort size consumed.
    n_bits:
        Bit depth of the encoding.
    method:
        Human-readable method tag (``"basic"``, ``"adaptive"``, ...).
    rounds:
        Per-round summaries, in execution order.
    squashed_bits:
        Indices zeroed by bit squashing (empty when squashing is off).
    metadata:
        Free-form extras (parameters, dropout rates, ...).
    """

    value: float
    encoded_value: float
    bit_means: np.ndarray
    counts: np.ndarray
    n_clients: int
    n_bits: int
    method: str
    rounds: tuple[RoundSummary, ...] = ()
    squashed_bits: tuple[int, ...] = ()
    metadata: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.bit_means.size != self.n_bits or self.counts.size != self.n_bits:
            raise ValueError(
                f"per-bit arrays must have length n_bits={self.n_bits}; "
                f"got {self.bit_means.size} means and {self.counts.size} counts"
            )

    @property
    def total_reports(self) -> int:
        """Total bit reports received (equals one per client when b_send=1)."""
        return int(self.counts.sum())

    @property
    def highest_occupied_bit(self) -> int:
        """Index of the highest bit with a (strictly) positive estimated mean.

        Returns -1 when every bit mean is <= 0.  This is the quantity the
        heavy-tail monitor tracks as a live upper bound on the data.
        """
        positive = np.flatnonzero(self.bit_means > 0.0)
        return int(positive[-1]) if positive.size else -1

    def __float__(self) -> float:  # pragma: no cover - trivial
        return self.value


@dataclass(frozen=True)
class VarianceEstimate:
    """A variance estimate produced via bit-pushing (paper Section 3.4).

    Attributes
    ----------
    value:
        Estimated population variance (clamped at 0; sampling noise can push
        the raw moment difference negative).
    raw_value:
        The un-clamped estimate, kept for diagnostics.
    mean:
        The mean estimate used/produced along the way.
    method:
        ``"moments"`` for ``E[X^2] - E[X]^2`` or ``"centered"`` for
        ``E[(X - E[X])^2]`` (Lemma 3.5 prefers the latter).
    second_moment:
        Estimate of ``E[X^2]`` (moments method) or of the centered second
        moment (centered method).
    n_clients:
        Total cohort size consumed across all phases.
    metadata:
        Free-form extras.
    """

    value: float
    raw_value: float
    mean: MeanEstimate
    method: str
    second_moment: float
    n_clients: int
    metadata: dict[str, Any] = field(default_factory=dict)

    @property
    def std(self) -> float:
        """Standard deviation implied by the (clamped) variance estimate."""
        return float(np.sqrt(self.value))

    def __float__(self) -> float:  # pragma: no cover - trivial
        return self.value
