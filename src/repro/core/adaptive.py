"""Adaptive (two-round) bit-pushing -- paper Algorithm 2.

Round 1 spends a ``delta`` fraction of the cohort measuring the per-bit
means with an input-independent schedule ``p_j \\propto (2**j)**gamma``.
Round 2 re-allocates the remaining clients with the data-driven schedule
``p_j \\propto (4**j m_j (1 - m_j))**alpha`` (Lemma 3.3's optimum at
``alpha = 0.5``), which automatically discards bits that round 1 found to be
empty -- the mechanism behind the flat bit-depth curves in Figures 1c/2c/4c.

"Caching" (Section 3.2) pools the reports of both rounds per bit, weighting
by report counts, instead of discarding round 1 after it has served its
scheduling purpose.  The paper's analysis suggests ``delta = 1/3`` and
``gamma = 0.5`` as defaults, evaluated empirically in our ablation benches.

Under local DP, round-1 estimates are noisy even on empty bits, so the
schedule would keep wasting clients there; the ``squash_multiple`` knob
applies Section 3.3's bit squashing to the round-1 means (threshold expressed
in multiples of the expected randomized-response noise) before the round-2
schedule is computed, and to the final pooled means before reconstruction.
"""

from __future__ import annotations

import numpy as np

from repro.core.client_plane import (
    ClientBatch,
    accumulate_bit_reports,
    elicit_values,
)
from repro.core.encoding import FixedPointEncoder
from repro.core.protocol import (
    BitPerturbation,
    bit_means_from_stats,
    combine_round_stats,
)
from repro.core.results import MeanEstimate, RoundSummary
from repro.core.sampling import (
    BitSamplingSchedule,
    central_assignment,
    local_assignment,
)
from repro.core.squashing import per_bit_squash_thresholds, squash_bit_means
from repro.exceptions import ConfigurationError
from repro.observability import get_metrics, get_tracer
from repro.rng import ensure_rng

__all__ = ["AdaptiveBitPushing"]

_RANDOMNESS_MODES = ("central", "local")


class AdaptiveBitPushing:
    """Two-round adaptive bit-pushing estimator (Algorithm 2).

    Parameters
    ----------
    encoder:
        Fixed-point encoding of the client values.
    gamma:
        Round-1 schedule exponent: ``p1_j \\propto (2**j)**gamma``.  Default
        (``None``): 0.5 without a perturbation, 0.0 (uniform) with one --
        randomized response makes every bit's report equally noisy
        regardless of level (Section 3.3), so the exploratory round must
        give low bits enough evidence to survive squashing.
    alpha:
        Round-2 schedule exponent: ``p2_j \\propto (4**j m_j (1-m_j))**alpha``.
    delta:
        Fraction of the cohort spent in round 1 (paper default 1/3).
    caching:
        Pool round-1 and round-2 reports for the final estimate (default
        True; Section 3.2 "Caching").
    randomness:
        ``"central"`` or ``"local"`` client-to-bit assignment.
    perturbation:
        Optional local DP mechanism applied to every transmitted bit.
    squash_multiple:
        Bit-squash threshold in multiples of the expected DP noise level
        (0 disables squashing; only meaningful with a perturbation).

    Examples
    --------
    >>> import numpy as np
    >>> enc = FixedPointEncoder.for_integers(n_bits=16)
    >>> est = AdaptiveBitPushing(enc)
    >>> rng = np.random.default_rng(7)
    >>> values = rng.normal(1000.0, 100.0, size=20_000)
    >>> bool(abs(est.estimate(values, rng=rng).value - values.mean()) < 25)
    True
    """

    method = "adaptive"

    def __init__(
        self,
        encoder: FixedPointEncoder,
        gamma: float | None = None,
        alpha: float = 0.5,
        delta: float = 1.0 / 3.0,
        caching: bool = True,
        randomness: str = "central",
        perturbation: BitPerturbation | None = None,
        squash_multiple: float = 0.0,
    ) -> None:
        if not 0.0 < delta < 1.0:
            raise ConfigurationError(f"delta must be in (0, 1), got {delta}")
        if randomness not in _RANDOMNESS_MODES:
            raise ConfigurationError(f"randomness must be one of {_RANDOMNESS_MODES}")
        if alpha < 0:
            raise ConfigurationError(f"alpha must be >= 0, got {alpha}")
        if squash_multiple < 0:
            raise ConfigurationError(f"squash_multiple must be >= 0, got {squash_multiple}")
        if squash_multiple > 0 and perturbation is None:
            raise ConfigurationError("squash_multiple requires a perturbation (it is a DP noise filter)")
        self.encoder = encoder
        self.gamma = gamma if gamma is not None else (0.0 if perturbation is not None else 0.5)
        self.alpha = alpha
        self.delta = delta
        self.caching = caching
        self.randomness = randomness
        self.perturbation = perturbation
        self.squash_multiple = squash_multiple

    # ------------------------------------------------------------------
    def estimate(
        self,
        values: np.ndarray,
        rng: np.random.Generator | int | None = None,
    ) -> MeanEstimate:
        """Estimate the mean of real-valued ``values`` in two rounds."""
        gen = ensure_rng(rng)
        encoded = self.encoder.encode(np.asarray(values, dtype=np.float64))
        return self.estimate_encoded(encoded, gen)

    def estimate_encoded(
        self,
        encoded: np.ndarray,
        rng: np.random.Generator | int | None = None,
    ) -> MeanEstimate:
        """Estimate from already-encoded uint64 values (one per client)."""
        gen = ensure_rng(rng)
        tracer = get_tracer()
        metrics = get_metrics()
        encoded = np.asarray(encoded, dtype=np.uint64)
        n_clients = int(encoded.size)
        if n_clients < 2:
            raise ConfigurationError(
                f"adaptive bit-pushing needs at least 2 clients, got {n_clients}"
            )
        n_bits = self.encoder.n_bits

        # Split the cohort: a random delta-fraction participates in round 1.
        n_round1 = min(max(int(round(self.delta * n_clients)), 1), n_clients - 1)
        order = gen.permutation(n_clients)
        cohort1 = encoded[order[:n_round1]]
        cohort2 = encoded[order[n_round1:]]

        # --- Round 1: input-independent geometric schedule. ---
        with tracer.span(
            "adaptive.round1", {"n_clients": n_round1, "gamma": self.gamma}
        ):
            schedule1 = BitSamplingSchedule.geometric(n_bits, gamma=self.gamma)
            summary1 = self._run_round(cohort1, schedule1, gen)
        round1_means = summary1.bit_means
        if self.squash_multiple > 0 and self.perturbation is not None:
            threshold = self._squash_threshold(summary1.counts)
            round1_means, _ = squash_bit_means(round1_means, threshold)

        # --- Round 2: data-driven schedule from round-1 bit means. ---
        with tracer.span(
            "adaptive.round2", {"n_clients": n_clients - n_round1, "alpha": self.alpha}
        ):
            schedule2 = BitSamplingSchedule.from_bit_means(round1_means, alpha=self.alpha)
            summary2 = self._run_round(cohort2, schedule2, gen)

        # --- Final aggregation (Algorithm 2 lines 9-11). ---
        with tracer.span("adaptive.combine", {"caching": self.caching}) as combine_span:
            if self.caching:
                pooled_means, pooled_counts = combine_round_stats(
                    [summary1.bit_means, summary2.bit_means],
                    [summary1.counts, summary2.counts],
                )
                # Cache hits: bits whose round-1 evidence is pooled into the
                # final estimate rather than discarded.
                cache_hits = int(np.count_nonzero(summary1.counts > 0))
                combine_span.set_attribute("cache_hits", cache_hits)
                if metrics.enabled:
                    metrics.counter("adaptive_cache_hits_total").inc(cache_hits)
            else:
                # Round 2 only, but bits it never sampled fall back to round 1
                # (they carried ~0 weight; dropping them entirely biases the
                # estimate whenever round 1 mis-scored a bit).
                pooled_means = np.where(
                    summary2.counts > 0, summary2.bit_means, summary1.bit_means
                )
                pooled_counts = np.where(summary2.counts > 0, summary2.counts, summary1.counts)
        if metrics.enabled:
            metrics.counter("adaptive_estimates_total").inc()

        squashed: tuple[int, ...] = ()
        if self.perturbation is not None:
            threshold = (
                self._squash_threshold(pooled_counts)
                if self.squash_multiple > 0
                else np.zeros_like(pooled_means)
            )
            pooled_means, squashed_idx = squash_bit_means(pooled_means, threshold)
            squashed = tuple(int(j) for j in squashed_idx)

        encoded_mean = float(self.encoder.powers @ pooled_means)
        return MeanEstimate(
            value=self.encoder.decode_scalar(encoded_mean),
            encoded_value=encoded_mean,
            bit_means=pooled_means,
            counts=pooled_counts,
            n_clients=n_clients,
            n_bits=n_bits,
            method=self.method,
            rounds=(summary1, summary2),
            squashed_bits=squashed,
            metadata={
                "gamma": self.gamma,
                "alpha": self.alpha,
                "delta": self.delta,
                "caching": self.caching,
                "randomness": self.randomness,
                "ldp": self.perturbation is not None,
                "squash_multiple": self.squash_multiple,
            },
        )

    def estimate_clients(
        self,
        batch: ClientBatch,
        strategy: str = "sample",
        rng: np.random.Generator | int | None = None,
        chunk: int | None = None,
    ) -> MeanEstimate:
        """Estimate straight from a columnar :class:`ClientBatch`.

        Columnar chunk-streamed elicitation followed by the standard
        two-round protocol; bit-identical to the object path for
        ``"sample"``/``"max"``/``"latest"`` elicitation.
        """
        gen = ensure_rng(rng)
        values = elicit_values(batch, strategy, gen, chunk=chunk)
        return self.estimate(values, gen)

    # ------------------------------------------------------------------
    def _run_round(
        self,
        cohort: np.ndarray,
        schedule: BitSamplingSchedule,
        gen: np.random.Generator,
    ) -> RoundSummary:
        n = int(cohort.size)
        if self.randomness == "central":
            assignment = central_assignment(n, schedule, gen)
        else:
            assignment = local_assignment(n, schedule, gen)
        # Chunk-streamed collection; bit-identical to collect_bit_reports
        # for any chunk size (see repro.core.client_plane).
        sums, counts = accumulate_bit_reports(
            cohort, self.encoder.n_bits, assignment, self.perturbation, gen
        )
        means = bit_means_from_stats(sums, counts, self.perturbation)
        return RoundSummary(
            probabilities=schedule.probabilities,
            counts=counts,
            sums=means * counts,
            bit_means=means,
            n_clients=n,
        )

    def _squash_threshold(self, counts: np.ndarray) -> np.ndarray:
        epsilon = getattr(self.perturbation, "epsilon", None)
        if epsilon is None:
            raise ConfigurationError(
                "squash_multiple needs a perturbation exposing an `epsilon` attribute"
            )
        return per_bit_squash_thresholds(self.squash_multiple, float(epsilon), counts)
