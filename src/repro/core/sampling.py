"""Bit-sampling schedules and client-to-bit assignment.

A *schedule* is the probability vector ``p`` over bit indices that controls
how many clients report each binary digit (paper Section 3.1).  This module
implements every schedule family the paper studies:

* **uniform** -- ``p_j = 1/b`` (shown suboptimal in Section 3.1);
* **weighted** -- ``p_j \\propto (2**j)**alpha``, the paper's
  ``p_j \\propto c**j = 2**(alpha j)`` family (Section 3.1): ``alpha = 1``
  is the worst-case-optimal ``p_j \\propto 2**j`` of Eq. 7 and the right
  choice under randomized response (Section 3.3); ``alpha = 0.5`` is the
  flatter allocation that empirically wins without DP when high-order bits
  are vacuous (Figures 1 and 2);
* **geometric** -- ``p_j \\propto (2**j)**gamma``, the same family under the
  round-1 name Algorithm 2 uses;
* **from_bit_means** -- the data-driven ``p_j \\propto (4**j m_j (1-m_j))**alpha``
  of Algorithm 2 round 2; with ``alpha = 0.5`` this is exactly the
  variance-optimal allocation of Lemma 3.3.

It also implements both assignment modes discussed in the paper:

* **central** randomness (the default): the server partitions the cohort so
  that exactly ``round(p_j * n)`` clients report bit ``j`` -- the
  quasi-Monte-Carlo choice that removes sampling noise in the per-bit counts
  and blunts poisoning attacks;
* **local** randomness: each client draws its own bit index i.i.d. from
  ``p`` (kept for the poisoning experiments of Section 5).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import ConfigurationError
from repro.rng import ensure_rng

__all__ = [
    "BitSamplingSchedule",
    "apportion_counts",
    "central_assignment",
    "local_assignment",
    "multi_bit_assignment",
]

#: Schedules whose probabilities sum to less than this are rejected.
_MIN_TOTAL_MASS = 1e-12


@dataclass(frozen=True)
class BitSamplingSchedule:
    """A normalized probability vector over bit indices.

    Instances are immutable; all constructors normalize and validate.  The
    vector is indexed LSB-first, matching :mod:`repro.core.encoding`.
    """

    probabilities: np.ndarray

    def __post_init__(self) -> None:
        probs = np.asarray(self.probabilities, dtype=np.float64)
        if probs.ndim != 1 or probs.size == 0:
            raise ConfigurationError("schedule must be a non-empty 1-D vector")
        if np.any(~np.isfinite(probs)) or np.any(probs < 0):
            raise ConfigurationError("schedule probabilities must be finite and non-negative")
        total = probs.sum()
        if total < _MIN_TOTAL_MASS:
            raise ConfigurationError("schedule has (near-)zero total mass")
        object.__setattr__(self, "probabilities", probs / total)
        self.probabilities.setflags(write=False)

    # ------------------------------------------------------------------
    # Constructors (one per schedule family in the paper)
    # ------------------------------------------------------------------
    @classmethod
    def uniform(cls, n_bits: int) -> "BitSamplingSchedule":
        """Every bit equally likely: ``p_j = 1/n_bits``."""
        _check_bits(n_bits)
        return cls(np.full(n_bits, 1.0 / n_bits))

    @classmethod
    def weighted(cls, n_bits: int, alpha: float = 1.0) -> "BitSamplingSchedule":
        """Fixed allocation ``p_j \\propto (2**j)**alpha`` (paper Section 3.1).

        ``alpha=1.0`` recovers the worst-case-optimal ``p_j \\propto 2**j``
        of Eq. 7 (also optimal under randomized-response noise, Section
        3.3); ``alpha=0.5`` is the flatter variant the paper's Figures 1-2
        evaluate alongside it.
        """
        _check_bits(n_bits)
        if not np.isfinite(alpha):
            raise ConfigurationError(f"alpha must be finite, got {alpha}")
        return cls(_stable_exponential_weights(n_bits, alpha))

    @classmethod
    def geometric(cls, n_bits: int, gamma: float = 0.5) -> "BitSamplingSchedule":
        """Round-1 allocation of Algorithm 2: ``p_j \\propto (2**j)**gamma``.

        Mathematically the same family as :meth:`weighted`; kept as a named
        constructor because the paper's Algorithm 2 exposes it under the
        round-1 parameter ``gamma``.
        """
        _check_bits(n_bits)
        if not np.isfinite(gamma):
            raise ConfigurationError(f"gamma must be finite, got {gamma}")
        return cls(_stable_exponential_weights(n_bits, gamma))

    @classmethod
    def from_bit_means(
        cls,
        bit_means: np.ndarray,
        alpha: float = 0.5,
        floor: float = 0.0,
    ) -> "BitSamplingSchedule":
        """Data-driven allocation ``p_j \\propto (4**j m_j (1 - m_j))**alpha``.

        This is Algorithm 2's round-2 schedule.  With ``alpha = 0.5`` it is
        the variance-optimal ``p_j \\propto sqrt(beta_j)`` of Lemma 3.3, with
        ``beta_j = 4**j m_j (1 - m_j)``.

        Estimated bit means are clipped into ``[0, 1]`` first (DP noise can
        push them outside; see Figure 4b), and bits whose resulting weight is
        zero receive probability 0 -- "unused bits do not need to be sampled"
        (Section 1.1).  If *every* weight vanishes (e.g. all inputs constant)
        the schedule falls back to ``weighted(n_bits, alpha=0.5)`` so the
        second round still measures something.

        ``floor`` optionally guarantees every bit a minimum share of mass,
        which keeps rare bits observable when caching is off.
        """
        means = np.clip(np.asarray(bit_means, dtype=np.float64), 0.0, 1.0)
        if means.ndim != 1 or means.size == 0:
            raise ConfigurationError("bit_means must be a non-empty 1-D vector")
        if not np.isfinite(alpha) or alpha < 0:
            raise ConfigurationError(f"alpha must be finite and >= 0, got {alpha}")
        if not 0.0 <= floor < 1.0 / means.size:
            if floor != 0.0:
                raise ConfigurationError(f"floor must be in [0, 1/n_bits), got {floor}")
        beta = np.exp2(2.0 * np.arange(means.size)) * means * (1.0 - means)
        if beta.sum() < _MIN_TOTAL_MASS:
            return cls.weighted(means.size, alpha=0.5)
        weights = np.power(beta, alpha)
        probs = weights / weights.sum()
        if floor > 0.0:
            probs = probs * (1.0 - floor * means.size) + floor
        return cls(probs)

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------
    @property
    def n_bits(self) -> int:
        return int(self.probabilities.size)

    def support(self) -> np.ndarray:
        """Indices of bits with strictly positive sampling probability."""
        return np.flatnonzero(self.probabilities > 0.0)

    def expected_counts(self, n_clients: int) -> np.ndarray:
        """Expected number of reporters per bit for a cohort of ``n_clients``."""
        return self.probabilities * n_clients

    def __len__(self) -> int:  # pragma: no cover - trivial
        return self.n_bits


def _check_bits(n_bits: int) -> None:
    if n_bits <= 0:
        raise ConfigurationError(f"n_bits must be positive, got {n_bits}")


def _stable_exponential_weights(n_bits: int, log2_rate: float) -> np.ndarray:
    """Normalized ``2**(log2_rate * j)`` weights, computed without overflow.

    Subtracting the maximum exponent before exponentiating keeps the largest
    weight at 1, so even 60-bit schedules with ``alpha = 1`` stay finite.
    """
    exponents = log2_rate * np.arange(n_bits, dtype=np.float64)
    weights = np.exp2(exponents - exponents.max())
    return weights / weights.sum()


# ----------------------------------------------------------------------
# Client assignment
# ----------------------------------------------------------------------

def apportion_counts(n_clients: int, schedule: BitSamplingSchedule) -> np.ndarray:
    """Split ``n_clients`` into integer per-bit counts matching the schedule.

    Uses largest-remainder apportionment so the counts sum exactly to
    ``n_clients`` and each differs from ``p_j * n`` by less than 1.  Bits
    with zero probability always receive zero clients.
    """
    if n_clients < 0:
        raise ConfigurationError(f"n_clients must be >= 0, got {n_clients}")
    quotas = schedule.probabilities * n_clients
    counts = np.floor(quotas).astype(np.int64)
    shortfall = n_clients - int(counts.sum())
    if shortfall > 0:
        remainders = quotas - counts
        # Never hand leftover clients to zero-probability bits.
        remainders[schedule.probabilities == 0.0] = -1.0
        top_up = np.argsort(remainders)[::-1][:shortfall]
        counts[top_up] += 1
    return counts


def central_assignment(
    n_clients: int,
    schedule: BitSamplingSchedule,
    rng: np.random.Generator | int | None = None,
) -> np.ndarray:
    """Server-side (quasi-Monte-Carlo) assignment of clients to bits.

    Returns an array ``a`` of length ``n_clients`` where ``a[i]`` is the bit
    index client ``i`` must report.  Exactly ``apportion_counts(...)[j]``
    clients land on bit ``j``; *which* clients is a uniform random partition.
    This is the paper's preferred mode: deterministic per-bit counts and no
    client control over which bit is revealed.
    """
    gen = ensure_rng(rng)
    counts = apportion_counts(n_clients, schedule)
    assignment = np.repeat(np.arange(schedule.n_bits, dtype=np.int64), counts)
    gen.shuffle(assignment)
    return assignment


def local_assignment(
    n_clients: int,
    schedule: BitSamplingSchedule,
    rng: np.random.Generator | int | None = None,
) -> np.ndarray:
    """Client-side assignment: each client draws its bit i.i.d. from ``p``.

    Per-bit counts are then multinomial rather than fixed.  This mode is
    more exposed to poisoning (an adversarial client can pretend its draw
    landed on the most significant bit), which Section 5 of the paper -- and
    :mod:`repro.attacks.poisoning` here -- quantifies.
    """
    gen = ensure_rng(rng)
    if n_clients < 0:
        raise ConfigurationError(f"n_clients must be >= 0, got {n_clients}")
    return gen.choice(schedule.n_bits, size=n_clients, p=schedule.probabilities)


def multi_bit_assignment(
    n_clients: int,
    schedule: BitSamplingSchedule,
    b_send: int,
    rng: np.random.Generator | int | None = None,
) -> np.ndarray:
    """Assign each client ``b_send`` *distinct* bits to report.

    Returns an ``(n_clients, b_send)`` integer array.  Used for the
    Corollary 3.2 regime where clients reveal more than one bit per value.
    Sampling is without replacement per client, weighted by the schedule, so
    a client never reports the same bit twice.
    """
    gen = ensure_rng(rng)
    if b_send < 1:
        raise ConfigurationError(f"b_send must be >= 1, got {b_send}")
    support = schedule.support()
    if b_send > support.size:
        raise ConfigurationError(
            f"b_send={b_send} exceeds the {support.size} bits with positive probability"
        )
    if b_send == 1:
        return central_assignment(n_clients, schedule, gen).reshape(-1, 1)
    # Weighted sampling without replacement per client via the Gumbel
    # top-k trick: argmax of log(p) + Gumbel noise, taken b_send times.
    log_p = np.full(schedule.n_bits, -np.inf)
    log_p[support] = np.log(schedule.probabilities[support])
    gumbel = gen.gumbel(size=(n_clients, schedule.n_bits))
    keys = log_p[None, :] + gumbel
    picked = np.argsort(keys, axis=1)[:, ::-1][:, :b_send]
    return picked.astype(np.int64)
