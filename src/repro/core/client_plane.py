"""Columnar client plane: struct-of-arrays client state + chunked kernels.

A federated round over N clients historically materialized N Python objects
(:class:`~repro.federated.client.ClientDevice`), N-element cohort lists, and
per-report temporaries -- fatal past ~10**5 clients.  This module replaces
that representation with one :class:`ClientBatch` (contiguous arrays for
values, multiset offsets, ids, and attribute columns) and implements the
client half of the protocol -- value elicitation, fixed-point encoding, bit
extraction, randomized response, and per-bit aggregation -- as vectorized
NumPy kernels processed in bounded-memory chunks of ``REPRO_BATCH_CHUNK``
clients (default 64k), so 10M-client rounds stream without blowup.

**Bit-identity contract.**  Every kernel here consumes randomness exactly as
its object-path twin, for *any* chunk size (including 1 and > n):

* NumPy ``Generator`` draws are element-sequential in C order, so splitting
  one ``gen.integers(sizes)`` / ``gen.random(shape)`` call into consecutive
  per-chunk calls yields the identical stream (pinned by
  ``tests/test_client_plane.py``).  Chunked elicitation and chunked
  randomized response are therefore *stream-identical* to the full-array
  pass.  (:class:`~repro.core.protocol.BitPerturbation` implementations must
  consume per-element randomness in C order -- true of randomized response.)
* Reported bits are 0/1, so per-chunk ``np.bincount`` partial sums
  accumulated in int64 equal the single full-array bincount exactly,
  regardless of chunk boundaries.

The one documented exception is ``"mean"`` elicitation: the columnar path
reduces each client's multiset with ``np.add.reduceat`` (sequential
accumulation) while the object path calls ``ndarray.mean`` (pairwise), which
can differ in the last ulp for multisets longer than a few elements.  The
``"sample"`` (default), ``"max"``, and ``"latest"`` strategies are exact.

Chunked stages emit ``client_plane.*`` tracer spans so flight-recorder
artifacts capture columnar runs phase by phase (see ``docs/performance.md``).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Any, Iterable, Iterator, Sequence

import numpy as np

from repro.core.encoding import FixedPointEncoder
from repro.core.protocol import BitPerturbation
from repro.exceptions import ConfigurationError, ProtocolError
from repro.observability import get_tracer
from repro.rng import ensure_rng

__all__ = [
    "DEFAULT_CHUNK_CLIENTS",
    "ClientBatch",
    "batch_chunk_size",
    "elicit_values",
    "accumulate_bit_reports",
    "collect_client_reports",
]

#: Default clients per chunk.  Wide per-chunk temporaries (encoded uint64,
#: extracted bits, perturbation draws) stay a few MB -- cache-friendly and
#: memory-bounded -- while per-chunk call overhead is amortized over tens of
#: thousands of rows.
DEFAULT_CHUNK_CLIENTS = 65_536


def batch_chunk_size(chunk: int | None = None) -> int:
    """Resolve the chunk size (clients per vectorized kernel invocation).

    An explicit ``chunk`` wins; otherwise the ``REPRO_BATCH_CHUNK``
    environment variable (absent/empty means :data:`DEFAULT_CHUNK_CLIENTS`).
    Chunk size is a pure performance/memory knob: results are bit-identical
    for every value >= 1.
    """
    if chunk is None:
        raw = os.environ.get("REPRO_BATCH_CHUNK", "").strip()
        if not raw:
            return DEFAULT_CHUNK_CLIENTS
        try:
            chunk = int(raw)
        except ValueError:
            raise ConfigurationError(
                f"REPRO_BATCH_CHUNK must be an integer, got {raw!r}"
            ) from None
    chunk = int(chunk)
    if chunk < 1:
        raise ConfigurationError(f"chunk size must be >= 1, got {chunk}")
    return chunk


def _chunk_bounds(n: int, chunk: int) -> Iterator[tuple[int, int]]:
    for lo in range(0, n, chunk):
        yield lo, min(lo + chunk, n)


@dataclass
class ClientBatch:
    """A population of clients as a struct-of-arrays (columnar) batch.

    Client ``i`` holds the multiset ``values[offsets[i]:offsets[i+1]]`` (at
    least one value each), identity ``client_ids[i]``, and one entry per
    attribute column.  This is the drop-in columnar replacement for a
    ``Sequence[ClientDevice]``: :class:`~repro.federated.server.
    FederatedMeanQuery` accepts either, and the two are bit-identical for
    the same seed.

    Parameters
    ----------
    values:
        Flat float64 array: every client's local observations, concatenated.
    offsets:
        int64 prefix array of length ``n + 1`` (``offsets[0] == 0``,
        ``offsets[-1] == values.size``, strictly increasing -- empty
        multisets are rejected, matching ``ClientDevice``).
    client_ids:
        int64 identity per client (default: ``arange(n)``).
    attributes:
        Columnar eligibility attributes: each key maps to a length-``n``
        array (see :func:`repro.federated.cohort.attribute_equals`).

    Examples
    --------
    >>> batch = ClientBatch.from_values([3.0, 5.0, 7.0])
    >>> len(batch), batch.sizes.tolist()
    (3, [1, 1, 1])
    >>> batch.take([2, 0]).values.tolist()
    [7.0, 3.0]
    """

    values: np.ndarray
    offsets: np.ndarray
    client_ids: np.ndarray | None = None
    attributes: dict[str, np.ndarray] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.values = np.ascontiguousarray(np.asarray(self.values, dtype=np.float64))
        self.offsets = np.ascontiguousarray(np.asarray(self.offsets, dtype=np.int64))
        if self.offsets.ndim != 1 or self.offsets.size < 1:
            raise ConfigurationError("offsets must be a 1-D prefix array of length n + 1")
        n = self.offsets.size - 1
        if self.offsets[0] != 0 or self.offsets[-1] != self.values.size:
            raise ConfigurationError(
                f"offsets must span [0, {self.values.size}], got "
                f"[{int(self.offsets[0])}, {int(self.offsets[-1])}]"
            )
        if np.any(np.diff(self.offsets) < 1):
            raise ConfigurationError("every client needs at least one local value")
        if self.client_ids is None:
            self.client_ids = np.arange(n, dtype=np.int64)
        else:
            self.client_ids = np.ascontiguousarray(
                np.asarray(self.client_ids, dtype=np.int64)
            )
        if self.client_ids.shape != (n,):
            raise ConfigurationError(
                f"client_ids shape {self.client_ids.shape} != ({n},)"
            )
        for key, column in self.attributes.items():
            column = np.asarray(column)
            if column.shape[:1] != (n,):
                raise ConfigurationError(
                    f"attribute column {key!r} has length {column.shape[:1]}, expected {n}"
                )
            self.attributes[key] = column

    # ------------------------------------------------------------------
    @property
    def n_clients(self) -> int:
        return int(self.offsets.size - 1)

    def __len__(self) -> int:
        return self.n_clients

    @property
    def sizes(self) -> np.ndarray:
        """Per-client multiset sizes (int64, length ``n``)."""
        return np.diff(self.offsets)

    @property
    def uniform(self) -> bool:
        """True when every client holds exactly one value (the fast path)."""
        return int(self.values.size) == self.n_clients

    def values_for(self, i: int) -> np.ndarray:
        """Client ``i``'s multiset (a view into the flat array)."""
        return self.values[self.offsets[i] : self.offsets[i + 1]]

    def local_means(self) -> np.ndarray:
        """Per-client local means (the ``"sample"`` ground-truth reduction).

        Sequential (``reduceat``) accumulation; can differ from per-client
        ``ndarray.mean`` in the last ulp for long multisets.
        """
        if self.uniform:
            return self.values.copy()
        return np.add.reduceat(self.values, self.offsets[:-1]) / self.sizes

    # ------------------------------------------------------------------
    @classmethod
    def from_values(
        cls,
        values: np.ndarray,
        client_ids: np.ndarray | None = None,
        attributes: dict[str, np.ndarray] | None = None,
    ) -> "ClientBatch":
        """One value per client (the common large-scale shape)."""
        vals = np.atleast_1d(np.asarray(values, dtype=np.float64))
        if vals.ndim != 1:
            raise ConfigurationError(f"expected a 1-D value array, got shape {vals.shape}")
        offsets = np.arange(vals.size + 1, dtype=np.int64)
        return cls(vals, offsets, client_ids, dict(attributes or {}))

    @classmethod
    def from_devices(cls, devices: Iterable[Any]) -> "ClientBatch":
        """Build a batch from device objects (duck-typed ``ClientDevice``).

        Each device must expose ``values`` (non-empty 1-D) and may expose
        ``client_id`` and an ``attributes`` mapping; attribute columns are
        the union of keys (missing entries become ``None``).  This is the
        compatibility constructor for tests and migrations -- it is O(n)
        Python, so large populations should be built columnar directly.
        """
        value_arrays: list[np.ndarray] = []
        ids: list[int] = []
        raw_attributes: list[dict] = []
        keys: list[str] = []
        for index, device in enumerate(devices):
            vals = np.atleast_1d(np.asarray(device.values, dtype=np.float64))
            if vals.size == 0:
                raise ConfigurationError(f"client at position {index} has no local values")
            value_arrays.append(vals)
            ids.append(int(getattr(device, "client_id", index)))
            attrs = dict(getattr(device, "attributes", None) or {})
            raw_attributes.append(attrs)
            for key in attrs:
                if key not in keys:
                    keys.append(key)
        if not value_arrays:
            raise ConfigurationError("need at least one client")
        sizes = np.array([a.size for a in value_arrays], dtype=np.int64)
        offsets = np.zeros(sizes.size + 1, dtype=np.int64)
        np.cumsum(sizes, out=offsets[1:])
        columns = {
            key: np.array([attrs.get(key) for attrs in raw_attributes], dtype=object)
            for key in keys
        }
        return cls(
            np.concatenate(value_arrays),
            offsets,
            np.array(ids, dtype=np.int64),
            columns,
        )

    # ------------------------------------------------------------------
    def take(self, indices: np.ndarray) -> "ClientBatch":
        """Select clients by position (cohort draw / survivor filtering).

        O(selected) -- the columnar analogue of ``[population[i] for i in
        indices]`` without touching the unselected rows.
        """
        idx = np.asarray(indices, dtype=np.int64)
        if idx.ndim != 1:
            raise ConfigurationError(f"indices must be 1-D, got shape {idx.shape}")
        if idx.size and (idx.min() < 0 or idx.max() >= self.n_clients):
            raise ConfigurationError(
                f"indices outside [0, {self.n_clients}) cannot be taken"
            )
        attributes = {key: column[idx] for key, column in self.attributes.items()}
        if self.uniform:
            return ClientBatch(
                self.values[idx],
                np.arange(idx.size + 1, dtype=np.int64),
                self.client_ids[idx],
                attributes,
            )
        sizes = self.sizes[idx]
        offsets = np.zeros(idx.size + 1, dtype=np.int64)
        np.cumsum(sizes, out=offsets[1:])
        # Ragged gather: element j of the output block for selected client k
        # reads self.values[starts[k] + j].
        flat = np.repeat(self.offsets[idx] - offsets[:-1], sizes) + np.arange(
            int(offsets[-1]), dtype=np.int64
        )
        return ClientBatch(self.values[flat], offsets, self.client_ids[idx], attributes)


# ----------------------------------------------------------------------
# Kernels
# ----------------------------------------------------------------------

def elicit_values(
    batch: ClientBatch,
    strategy: str = "sample",
    rng: np.random.Generator | int | None = None,
    chunk: int | None = None,
) -> np.ndarray:
    """Elicit one value per client from a columnar batch.

    The vectorized twin of :func:`repro.federated.multivalue.elicit_batch`:
    ``"sample"`` draws the per-client local index with chunked
    ``gen.integers(sizes)`` calls -- stream-identical to the object path for
    any chunk size -- and ``"max"``/``"latest"`` are exact reductions.
    ``"mean"`` uses sequential ``reduceat`` accumulation (see the module
    docstring for the ulp caveat).
    """
    n = len(batch)
    if n == 0:
        return np.empty(0)
    if strategy == "sample":
        gen = ensure_rng(rng)
        size = batch_chunk_size(chunk)
        out = np.empty(n)
        tracer = get_tracer()
        sizes = batch.sizes
        starts = batch.offsets[:-1]
        for index, (lo, hi) in enumerate(_chunk_bounds(n, size)):
            with tracer.span(
                "client_plane.elicit",
                {"chunk": index, "lo": lo, "hi": hi, "strategy": strategy},
            ):
                picks = gen.integers(sizes[lo:hi])
                out[lo:hi] = batch.values[starts[lo:hi] + picks]
        return out
    if strategy == "mean":
        return batch.local_means()
    if strategy == "max":
        if batch.uniform:
            return batch.values.copy()
        return np.maximum.reduceat(batch.values, batch.offsets[:-1])
    if strategy == "latest":
        return batch.values[batch.offsets[1:] - 1]
    # Defer to the object-path module for the canonical error message.
    from repro.federated.multivalue import ELICITATION_STRATEGIES

    raise ConfigurationError(
        f"unknown elicitation strategy {strategy!r}; expected one of {ELICITATION_STRATEGIES}"
    )


def _validated_assignment(assignment: np.ndarray, n: int, n_bits: int) -> np.ndarray:
    assign = np.asarray(assignment, dtype=np.int64)
    if assign.ndim == 1:
        assign = assign.reshape(-1, 1)
    if assign.ndim != 2 or assign.shape[0] != n:
        raise ProtocolError(
            f"assignment shape {assign.shape} incompatible with {n} clients"
        )
    if assign.size and (assign.min() < 0 or assign.max() >= n_bits):
        raise ProtocolError(f"assignment indexes outside [0, {n_bits})")
    return assign


def _collect_chunk(
    encoded_chunk: np.ndarray,
    assign_chunk: np.ndarray,
    n_bits: int,
    perturbation: BitPerturbation | None,
    gen: np.random.Generator | None,
    sums: np.ndarray,
    counts: np.ndarray,
) -> None:
    """Extract, perturb, and fold one chunk into the int64 accumulators."""
    bits = (
        (encoded_chunk[:, None] >> assign_chunk.astype(np.uint64)) & np.uint64(1)
    ).astype(np.uint8)
    if perturbation is not None:
        bits = np.asarray(perturbation.perturb_bits(bits, gen), dtype=np.uint8)
        if bits.shape != assign_chunk.shape:
            raise ProtocolError(
                f"perturbation changed report shape from {assign_chunk.shape} to {bits.shape}"
            )
    flat = assign_chunk.ravel()
    sums += np.bincount(flat[bits.ravel() == 1], minlength=n_bits)
    counts += np.bincount(flat, minlength=n_bits)


def accumulate_bit_reports(
    encoded: np.ndarray,
    n_bits: int,
    assignment: np.ndarray,
    perturbation: BitPerturbation | None = None,
    rng: np.random.Generator | int | None = None,
    chunk: int | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Chunk-streamed twin of :func:`repro.core.protocol.collect_bit_reports`.

    Identical signature and bit-identical ``(sums, counts)`` for every chunk
    size; the wide intermediates (extracted bits, perturbation draws) are
    chunk-sized instead of cohort-sized.  A cohort that fits in one chunk
    takes exactly the legacy single-pass code path (one ``perturb_bits``
    call on the full array, no extra spans), so the hot small-``n`` loops of
    the figure harness are unaffected.
    """
    enc = np.asarray(encoded, dtype=np.uint64)
    n = int(enc.shape[0]) if enc.ndim else int(enc.size)
    assign = _validated_assignment(assignment, n, n_bits)
    size = batch_chunk_size(chunk)
    gen = ensure_rng(rng) if perturbation is not None else None
    sums = np.zeros(n_bits, dtype=np.int64)
    counts = np.zeros(n_bits, dtype=np.int64)
    if n <= size:
        _collect_chunk(enc, assign, n_bits, perturbation, gen, sums, counts)
        return sums.astype(np.float64), counts
    tracer = get_tracer()
    for index, (lo, hi) in enumerate(_chunk_bounds(n, size)):
        with tracer.span(
            "client_plane.collect", {"chunk": index, "lo": lo, "hi": hi}
        ):
            _collect_chunk(
                enc[lo:hi], assign[lo:hi], n_bits, perturbation, gen, sums, counts
            )
    return sums.astype(np.float64), counts


def collect_client_reports(
    values: np.ndarray,
    encoder: FixedPointEncoder,
    assignment: np.ndarray,
    perturbation: BitPerturbation | None = None,
    rng: np.random.Generator | int | None = None,
    chunk: int | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Encode + extract + perturb + aggregate elicited values, chunk by chunk.

    The federated server's columnar collection stage: fuses fixed-point
    encoding into the chunk loop so the cohort-sized uint64 array is never
    materialized (per-chunk peak: ``chunk * (8B encoded + b_send bits +
    perturbation draw)``).  Bit-identical to ``encoder.encode(values)``
    followed by ``collect_bit_reports(...)`` for any chunk size.  Always
    emits one ``client_plane.collect`` span per chunk so recorded artifacts
    show the streaming structure.
    """
    vals = np.asarray(values, dtype=np.float64)
    n = int(vals.size)
    assign = _validated_assignment(assignment, n, encoder.n_bits)
    size = batch_chunk_size(chunk)
    gen = ensure_rng(rng) if perturbation is not None else None
    sums = np.zeros(encoder.n_bits, dtype=np.int64)
    counts = np.zeros(encoder.n_bits, dtype=np.int64)
    tracer = get_tracer()
    for index, (lo, hi) in enumerate(_chunk_bounds(n, size)):
        with tracer.span(
            "client_plane.collect",
            {"chunk": index, "lo": lo, "hi": hi, "n_bits": encoder.n_bits},
        ):
            encoded_chunk = encoder.encode(vals[lo:hi])
            _collect_chunk(
                encoded_chunk, assign[lo:hi], encoder.n_bits, perturbation, gen, sums, counts
            )
    return sums.astype(np.float64), counts
