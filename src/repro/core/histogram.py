"""One-bit federated histograms.

The data bit-pushing collects is "essentially a collection of binary
histograms" (paper Section 3.3).  Running the machinery on *bucket
membership* bits instead of binary digits turns it into a direct histogram
protocol: the server assigns each client one bucket (central randomness);
the client reports the single bit "is my value in that bucket?"; bucket
frequencies are the per-bucket report means.  Randomized response on the
membership bit gives epsilon-LDP; a distributed mechanism
(:mod:`repro.privacy.distributed`) can privatize the per-bucket counters
instead when a secure-aggregation boundary exists.

One membership bit reveals at most one bit about the value -- the same
worst-case promise as numeric bit-pushing -- though which *bucket* was
probed is public metadata, exactly like the probed bit index.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.core.protocol import BitPerturbation
from repro.core.sampling import BitSamplingSchedule, central_assignment
from repro.exceptions import ConfigurationError
from repro.privacy.distributed import BernoulliNoiseAggregator, SampleAndThreshold
from repro.rng import ensure_rng

__all__ = ["HistogramEstimate", "FederatedHistogram"]


@dataclass(frozen=True)
class HistogramEstimate:
    """Estimated bucket frequencies with per-bucket evidence."""

    edges: np.ndarray
    frequencies: np.ndarray
    counts: np.ndarray
    n_clients: int
    metadata: dict[str, Any] = field(default_factory=dict)

    @property
    def n_buckets(self) -> int:
        return int(self.frequencies.size)

    def mean_estimate(self) -> float:
        """Mean implied by the histogram (bucket midpoints x frequencies)."""
        midpoints = (self.edges[:-1] + self.edges[1:]) / 2.0
        total = self.frequencies.sum()
        if total <= 0:
            raise ConfigurationError("histogram has no mass; cannot imply a mean")
        return float(midpoints @ self.frequencies / total)

    def quantile_estimate(self, q: float) -> float:
        """Approximate quantile, linearly interpolated within its bucket."""
        if not 0.0 <= q <= 1.0:
            raise ConfigurationError(f"q must be in [0, 1], got {q}")
        total = self.frequencies.sum()
        if total <= 0:
            raise ConfigurationError("histogram has no mass; cannot imply a quantile")
        cumulative = np.cumsum(self.frequencies) / total
        bucket = min(int(np.searchsorted(cumulative, q)), self.n_buckets - 1)
        below = cumulative[bucket - 1] if bucket > 0 else 0.0
        mass = cumulative[bucket] - below
        fraction = (q - below) / mass if mass > 0 else 1.0
        low, high = self.edges[bucket], self.edges[bucket + 1]
        return float(low + fraction * (high - low))


class FederatedHistogram:
    """Bucket-frequency estimation from one membership bit per client.

    Parameters
    ----------
    edges:
        Bucket boundaries (length ``n_buckets + 1``, strictly increasing).
        Values outside ``[edges[0], edges[-1]]`` are clipped into the end
        buckets (winsorization, as for numeric encoding).
    perturbation:
        Optional local DP mechanism applied to the membership bit.
    distributed:
        Optional distributed-DP mechanism applied to the per-bucket counters
        server-side (mutually exclusive with ``perturbation``).

    Examples
    --------
    >>> import numpy as np
    >>> rng = np.random.default_rng(0)
    >>> values = rng.normal(50.0, 10.0, 100_000)
    >>> hist = FederatedHistogram(np.linspace(0, 100, 11))
    >>> estimate = hist.estimate(values, rng)
    >>> int(np.argmax(estimate.frequencies))   # modal bucket is 40-50 or 50-60
    4
    """

    def __init__(
        self,
        edges: np.ndarray,
        perturbation: BitPerturbation | None = None,
        distributed: "BernoulliNoiseAggregator | SampleAndThreshold | None" = None,
    ) -> None:
        edges = np.asarray(edges, dtype=np.float64)
        if edges.ndim != 1 or edges.size < 2:
            raise ConfigurationError("need at least two bucket edges")
        if np.any(~np.isfinite(edges)) or np.any(np.diff(edges) <= 0):
            raise ConfigurationError("edges must be finite and strictly increasing")
        if perturbation is not None and distributed is not None:
            raise ConfigurationError(
                "choose local (perturbation) or distributed DP, not both"
            )
        self.edges = edges
        self.perturbation = perturbation
        self.distributed = distributed

    @classmethod
    def uniform(
        cls,
        low: float,
        high: float,
        n_buckets: int,
        perturbation: BitPerturbation | None = None,
        distributed: "BernoulliNoiseAggregator | SampleAndThreshold | None" = None,
    ) -> "FederatedHistogram":
        """Equal-width buckets over ``[low, high]``."""
        if n_buckets < 1:
            raise ConfigurationError(f"n_buckets must be >= 1, got {n_buckets}")
        return cls(np.linspace(low, high, n_buckets + 1), perturbation, distributed)

    # ------------------------------------------------------------------
    @property
    def n_buckets(self) -> int:
        return int(self.edges.size - 1)

    def bucket_of(self, values: np.ndarray) -> np.ndarray:
        """True bucket index of each value (clipped into range)."""
        vals = np.asarray(values, dtype=np.float64)
        idx = np.searchsorted(self.edges, vals, side="right") - 1
        return np.clip(idx, 0, self.n_buckets - 1)

    # ------------------------------------------------------------------
    def estimate(
        self,
        values: np.ndarray,
        rng: np.random.Generator | int | None = None,
    ) -> HistogramEstimate:
        """Estimate bucket frequencies from one membership bit per client."""
        gen = ensure_rng(rng)
        vals = np.asarray(values, dtype=np.float64)
        n = int(vals.size)
        if n < self.n_buckets:
            raise ConfigurationError(
                f"need at least one client per bucket ({self.n_buckets}), got {n}"
            )
        # Central randomness: the server spreads probes evenly over buckets.
        schedule = BitSamplingSchedule.uniform(self.n_buckets)
        probes = central_assignment(n, schedule, gen)
        membership = (self.bucket_of(vals) == probes).astype(np.uint8)
        if self.perturbation is not None:
            membership = self.perturbation.perturb_bits(membership, gen)

        sums = np.bincount(probes, weights=membership.astype(np.float64),
                           minlength=self.n_buckets)
        counts = np.bincount(probes, minlength=self.n_buckets)
        if self.distributed is not None:
            frequencies = self.distributed.privatize_bit_means(sums, counts, gen)
        else:
            frequencies = np.where(counts > 0, sums / np.maximum(counts, 1), 0.0)
            if self.perturbation is not None:
                frequencies = self.perturbation.unbias_bit_means(frequencies)
        # Frequencies are proportions: clip noise-driven escapes into [0, 1].
        frequencies = np.clip(frequencies, 0.0, 1.0)
        return HistogramEstimate(
            edges=self.edges,
            frequencies=frequencies,
            counts=counts.astype(np.int64),
            n_clients=n,
            metadata={
                "ldp": self.perturbation is not None,
                "distributed": self.distributed is not None,
            },
        )
