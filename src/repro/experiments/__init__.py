"""Experiment definitions: one function per paper figure panel, plus ablations."""

from repro.experiments.ablations import (
    alpha_sweep,
    b_send_sweep,
    caching_ablation,
    delta_sweep,
    distributed_dp_comparison,
    dropout_adjustment,
    gamma_sweep,
    poisoning_sweep,
    schedule_sensitivity,
    variance_decomposition,
)
from repro.experiments.figure1 import figure_1a, figure_1b, figure_1c
from repro.experiments.figure2 import figure_2a, figure_2b, figure_2c
from repro.experiments.figure3 import figure_3a, figure_3b
from repro.experiments.figure4 import BitMeansSnapshot, figure_4a, figure_4b, figure_4c
from repro.experiments.methods import (
    PAPER_MEAN_METHODS,
    distributed_mean_estimate,
    mean_methods,
    variance_methods,
)
from repro.experiments.report import (
    render_series_table,
    render_snapshot,
    series_to_json,
    snapshot_to_json,
)

__all__ = [
    "BitMeansSnapshot",
    "PAPER_MEAN_METHODS",
    "alpha_sweep",
    "b_send_sweep",
    "caching_ablation",
    "delta_sweep",
    "distributed_dp_comparison",
    "distributed_mean_estimate",
    "dropout_adjustment",
    "figure_1a",
    "figure_1b",
    "figure_1c",
    "figure_2a",
    "figure_2b",
    "figure_2c",
    "figure_3a",
    "figure_3b",
    "figure_4a",
    "figure_4b",
    "figure_4c",
    "gamma_sweep",
    "mean_methods",
    "poisoning_sweep",
    "render_series_table",
    "render_snapshot",
    "schedule_sensitivity",
    "series_to_json",
    "snapshot_to_json",
    "variance_decomposition",
    "variance_methods",
]
