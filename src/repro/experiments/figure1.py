"""Figure 1: accuracy on Normal data (sigma = 100) -- paper Section 4.1.

Three panels:

* **1a** mean NRMSE as the true mean sweeps upward.  Bit depth tracks the
  needed range (``b = bits(mu + 4 sigma)``), so the dithering bound steps up
  at powers of two -- reproducing its characteristic error staircase.
* **1b** variance NRMSE over the same sweep, with the paper's larger
  100k-client cohort.
* **1c** mean NRMSE as the bit depth grows past what the data needs --
  the "loose range bound" stress test where adaptivity pays off.
"""

from __future__ import annotations

import numpy as np

from repro.core.encoding import required_bits
from repro.data import synthetic
from repro.experiments.methods import (
    PAPER_MEAN_METHODS,
    mean_methods,
    variance_methods,
)
from repro.metrics.execution import TrialExecutor
from repro.metrics.experiment import SeriesResult, sweep

__all__ = ["figure_1a", "figure_1b", "figure_1c", "DEFAULT_MUS", "DEFAULT_BIT_DEPTHS"]

#: Mean sweep crossing several powers of two, as in the paper's x-axis.
DEFAULT_MUS = (100.0, 200.0, 300.0, 400.0, 600.0, 800.0, 1200.0, 1600.0, 2400.0, 3200.0, 4800.0, 6400.0)
#: Bit-depth sweep for the loose-bound experiments.
DEFAULT_BIT_DEPTHS = (10, 12, 14, 16, 18, 20)

#: Headroom used to pick the bit depth for a Normal(mu, sigma) population.
_RANGE_SIGMAS = 4.0


def bits_for_normal(mu: float, sigma: float) -> int:
    """Bit depth covering ``mu + 4 sigma`` -- the assumed range per sweep point."""
    return required_bits(int(np.ceil(mu + _RANGE_SIGMAS * sigma)))


def figure_1a(
    n_clients: int = 10_000,
    mus: tuple[float, ...] = DEFAULT_MUS,
    sigma: float = 100.0,
    n_reps: int = 100,
    seed: int = 101,
    executor: TrialExecutor | None = None,
) -> dict[str, SeriesResult]:
    """Mean NRMSE vs the true mean (Figure 1a)."""
    results: dict[str, SeriesResult] = {}
    for label in PAPER_MEAN_METHODS:
        def cell(mu: float, label: str = label):
            n_bits = bits_for_normal(mu, sigma)
            method = mean_methods(n_bits, include=[label])[label]
            def make(rng: np.random.Generator) -> np.ndarray:
                return synthetic.normal(n_clients, mu, sigma, rng)
            return make, method

        results[label] = sweep(label, mus, cell, n_reps=n_reps, seed=seed, executor=executor)
    return results


def figure_1b(
    n_clients: int = 100_000,
    mus: tuple[float, ...] = DEFAULT_MUS,
    sigma: float = 100.0,
    n_reps: int = 100,
    seed: int = 102,
    executor: TrialExecutor | None = None,
) -> dict[str, SeriesResult]:
    """Variance NRMSE vs the true mean (Figure 1b).

    NRMSE here normalizes by the *true variance* of each sample, the
    statistic being estimated.  The paper allocates 100k clients because
    variance is a harder target.
    """
    results: dict[str, SeriesResult] = {}
    for label in PAPER_MEAN_METHODS:
        def cell(mu: float, label: str = label):
            n_bits = bits_for_normal(mu, sigma)
            method = variance_methods(n_bits, include=[label])[label]
            def make(rng: np.random.Generator) -> np.ndarray:
                return synthetic.normal(n_clients, mu, sigma, rng)
            return make, method

        results[label] = sweep(
            label, mus, cell, n_reps=n_reps, seed=seed, executor=executor,
            truth_fn=lambda values: float(np.var(values)),
        )
    return results


def figure_1c(
    n_clients: int = 10_000,
    mu: float = 1000.0,
    sigma: float = 100.0,
    bit_depths: tuple[int, ...] = DEFAULT_BIT_DEPTHS,
    n_reps: int = 100,
    seed: int = 103,
    executor: TrialExecutor | None = None,
) -> dict[str, SeriesResult]:
    """Mean NRMSE vs bit depth at a fixed mean (Figure 1c).

    The data never exceeds ~11 bits; extra depth is pure slack.  One-round
    methods pay for it (less at ``alpha = 0.5``); the adaptive method
    detects the vacuous bits in round 1 and stays flat.
    """
    results: dict[str, SeriesResult] = {}
    for label in PAPER_MEAN_METHODS:
        def cell(n_bits: float, label: str = label):
            method = mean_methods(int(n_bits), include=[label])[label]
            def make(rng: np.random.Generator) -> np.ndarray:
                return synthetic.normal(n_clients, mu, sigma, rng)
            return make, method

        results[label] = sweep(label, bit_depths, cell, n_reps=n_reps, seed=seed, executor=executor)
    return results
