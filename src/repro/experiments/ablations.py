"""Ablations over the design choices DESIGN.md calls out.

These go beyond the paper's printed figures to check the claims made in its
prose: the delta = 1/3 round split (Section 3.2), the gamma/alpha schedule
exponents, the value of caching, the Corollary 3.2 ``b_send`` scaling, the
Lemma 3.5 variance-decomposition preference, central-vs-local randomness
under poisoning (Section 5), distributed DP's better n-dependence
(Section 3.3), and the dropout auto-adjustment of sampling probabilities
(Section 4.3).
"""

from __future__ import annotations

import numpy as np

from repro.attacks.poisoning import poisoned_estimate
from repro.core import (
    AdaptiveBitPushing,
    BasicBitPushing,
    BitSamplingSchedule,
    FixedPointEncoder,
    VarianceEstimator,
)
from repro.data.census import sample_ages
from repro.data.synthetic import normal
from repro.experiments.methods import distributed_mean_estimate, mean_methods
from repro.federated import ClientDevice, DropoutModel, FederatedMeanQuery
from repro.metrics.execution import TrialExecutor
from repro.metrics.experiment import SeriesResult, sweep
from repro.privacy.distributed import BernoulliNoiseAggregator, SampleAndThreshold

__all__ = [
    "delta_sweep",
    "gamma_sweep",
    "alpha_sweep",
    "caching_ablation",
    "b_send_sweep",
    "variance_decomposition",
    "poisoning_sweep",
    "distributed_dp_comparison",
    "dropout_adjustment",
    "schedule_sensitivity",
]

_MU, _SIGMA = 1000.0, 100.0
_BITS = 14  # deliberately loose so adaptivity matters


def _normal_make(n_clients: int):
    def make(rng: np.random.Generator) -> np.ndarray:
        return normal(n_clients, _MU, _SIGMA, rng)
    return make


def delta_sweep(
    deltas: tuple[float, ...] = (0.1, 0.2, 1.0 / 3.0, 0.5, 0.7),
    n_clients: int = 10_000,
    n_reps: int = 100,
    seed: int = 501,
    executor: TrialExecutor | None = None,
) -> dict[str, SeriesResult]:
    """Adaptive NRMSE vs the round-1 cohort fraction delta (paper picks 1/3)."""
    encoder = FixedPointEncoder.for_integers(_BITS)

    def cell(delta: float):
        est = AdaptiveBitPushing(encoder, delta=delta)
        return _normal_make(n_clients), lambda values, rng: float(est.estimate(values, rng).value)

    return {"adaptive": sweep("adaptive", deltas, cell, n_reps=n_reps, seed=seed, executor=executor)}


def gamma_sweep(
    gammas: tuple[float, ...] = (0.0, 0.25, 0.5, 0.75, 1.0),
    n_clients: int = 10_000,
    n_reps: int = 100,
    seed: int = 502,
    executor: TrialExecutor | None = None,
) -> dict[str, SeriesResult]:
    """Adaptive NRMSE vs the round-1 schedule exponent gamma (default 0.5)."""
    encoder = FixedPointEncoder.for_integers(_BITS)

    def cell(gamma: float):
        est = AdaptiveBitPushing(encoder, gamma=gamma)
        return _normal_make(n_clients), lambda values, rng: float(est.estimate(values, rng).value)

    return {"adaptive": sweep("adaptive", gammas, cell, n_reps=n_reps, seed=seed, executor=executor)}


def alpha_sweep(
    alphas: tuple[float, ...] = (0.25, 0.5, 0.75, 1.0),
    n_clients: int = 10_000,
    n_reps: int = 100,
    seed: int = 503,
    executor: TrialExecutor | None = None,
) -> dict[str, SeriesResult]:
    """Adaptive NRMSE vs the round-2 exponent alpha (Lemma 3.3 optimum: 0.5)."""
    encoder = FixedPointEncoder.for_integers(_BITS)

    def cell(alpha: float):
        est = AdaptiveBitPushing(encoder, alpha=alpha)
        return _normal_make(n_clients), lambda values, rng: float(est.estimate(values, rng).value)

    return {"adaptive": sweep("adaptive", alphas, cell, n_reps=n_reps, seed=seed, executor=executor)}


def caching_ablation(
    cohorts: tuple[int, ...] = (1_000, 5_000, 10_000, 50_000),
    n_reps: int = 100,
    seed: int = 504,
    executor: TrialExecutor | None = None,
) -> dict[str, SeriesResult]:
    """Caching (pool both rounds) vs round-2-only, across cohort sizes."""
    encoder = FixedPointEncoder.for_integers(_BITS)
    results: dict[str, SeriesResult] = {}
    for label, caching in (("caching", True), ("round-2 only", False)):
        def cell(n_clients: float, caching: bool = caching):
            est = AdaptiveBitPushing(encoder, caching=caching)
            return (
                _normal_make(int(n_clients)),
                lambda values, rng: float(est.estimate(values, rng).value),
            )

        results[label] = sweep(label, cohorts, cell, n_reps=n_reps, seed=seed, executor=executor)
    return results


def b_send_sweep(
    b_sends: tuple[int, ...] = (1, 2, 4, 8),
    n_clients: int = 10_000,
    n_reps: int = 100,
    seed: int = 505,
    executor: TrialExecutor | None = None,
) -> dict[str, SeriesResult]:
    """Basic NRMSE vs bits sent per client (Corollary 3.2: ~1/sqrt(b_send))."""
    encoder = FixedPointEncoder.for_integers(_BITS)

    def cell(b_send: float):
        est = BasicBitPushing(encoder, b_send=int(b_send))
        return _normal_make(n_clients), lambda values, rng: float(est.estimate(values, rng).value)

    return {"basic": sweep("basic", b_sends, cell, n_reps=n_reps, seed=seed, executor=executor)}


def variance_decomposition(
    cohorts: tuple[int, ...] = (10_000, 50_000, 100_000),
    n_reps: int = 100,
    seed: int = 506,
    executor: TrialExecutor | None = None,
) -> dict[str, SeriesResult]:
    """Lemma 3.5: centered vs moments variance estimation, across n."""
    encoder = FixedPointEncoder.for_integers(11)
    results: dict[str, SeriesResult] = {}
    for method in ("centered", "moments"):
        def cell(n_clients: float, method: str = method):
            est = VarianceEstimator(encoder, method=method, inner="adaptive")
            def make(rng: np.random.Generator) -> np.ndarray:
                return normal(int(n_clients), _MU, _SIGMA, rng)
            return make, lambda values, rng: float(est.estimate(values, rng).value)

        results[method] = sweep(
            method, cohorts, cell, n_reps=n_reps, seed=seed, executor=executor,
            truth_fn=lambda values: float(np.var(values)),
        )
    return results


def poisoning_sweep(
    fractions: tuple[float, ...] = (0.0, 0.001, 0.002, 0.005, 0.01, 0.02, 0.05),
    n_clients: int = 10_000,
    n_reps: int = 50,
    seed: int = 507,
    executor: TrialExecutor | None = None,
) -> dict[str, SeriesResult]:
    """Attack-induced relative shift, local vs central randomness (Section 5).

    The estimator output here is the attacked estimate re-centred on the
    honest same-run estimate, so NRMSE isolates what the adversary injected
    (sampling noise cancels).

    The sweep uses a *uniform* schedule: the local-randomness amplification
    is the factor by which an adversary can concentrate its reports on the
    top bit relative to the schedule's own allocation (about ``1/(b p_top)``).
    Under the ``2**j``-weighted schedule the top bit already holds ~half the
    sampling mass, so the gap nearly vanishes -- itself an interesting
    finding -- whereas under uniform sampling central randomness cuts the
    attack's leverage by roughly the bit depth.
    """
    encoder = FixedPointEncoder.for_integers(_BITS)
    schedule = BitSamplingSchedule.uniform(_BITS)
    results: dict[str, SeriesResult] = {}
    for randomness in ("local", "central"):
        def cell(fraction: float, randomness: str = randomness):
            def run(values: np.ndarray, rng: np.random.Generator) -> float:
                outcome = poisoned_estimate(
                    values, encoder, fraction, randomness=randomness,
                    schedule=schedule, rng=rng,
                )
                # Report the shift around the honest estimate, re-centred on
                # the truth so NRMSE measures attack-injected error only.
                return outcome.true_mean + outcome.attack_shift
            return _normal_make(n_clients), run

        results[randomness] = sweep(randomness, fractions, cell, n_reps=n_reps, seed=seed, executor=executor)
    return results


def distributed_dp_comparison(
    epsilons: tuple[float, ...] = (0.5, 1.0, 2.0),
    n_clients: int = 100_000,
    n_bits: int = 8,
    delta: float = 1e-6,
    n_reps: int = 100,
    seed: int = 508,
    executor: TrialExecutor | None = None,
) -> dict[str, SeriesResult]:
    """Local RR vs distributed mechanisms on census data (Section 3.3).

    Distributed DP adds aggregate-level noise, so its error should sit far
    below local randomized response at equal epsilon and shrink faster in n.
    """
    results: dict[str, SeriesResult] = {}

    def ldp_cell(epsilon: float):
        method = mean_methods(n_bits, epsilon=epsilon, include=["weighted a=0.5"])[
            "weighted a=0.5"
        ]
        def make(rng: np.random.Generator) -> np.ndarray:
            return sample_ages(n_clients, rng)
        return make, method

    results["local RR"] = sweep("local RR", epsilons, ldp_cell, n_reps=n_reps, seed=seed, executor=executor)

    for label, factory in (
        ("bernoulli noise", lambda eps: BernoulliNoiseAggregator(eps, delta)),
        ("sample+threshold", lambda eps: SampleAndThreshold(eps, delta)),
    ):
        def cell(epsilon: float, factory=factory):
            mechanism = factory(epsilon)
            def make(rng: np.random.Generator) -> np.ndarray:
                return sample_ages(n_clients, rng)
            def run(values: np.ndarray, rng: np.random.Generator) -> float:
                return distributed_mean_estimate(values, n_bits, mechanism, rng)
            return make, run

        results[label] = sweep(label, epsilons, cell, n_reps=n_reps, seed=seed, executor=executor)
    return results


def schedule_sensitivity(
    mix_fractions: tuple[float, ...] = (0.0, 0.1, 0.25, 0.5, 0.75, 1.0),
    n_clients: int = 10_000,
    n_reps: int = 100,
    seed: int = 510,
    executor: TrialExecutor | None = None,
) -> dict[str, SeriesResult]:
    """NRMSE as the schedule is blended away from the Eq. 7 optimum.

    ``p(t) = (1 - t) * p_opt + t * uniform`` sweeps from the worst-case
    optimal allocation to uniform.  The deployment found the protocol "not
    overly sensitive to the bit-sampling probability" (Section 4.3) -- the
    curve should rise gently rather than cliff.
    """
    encoder = FixedPointEncoder.for_integers(_BITS)
    optimum = BitSamplingSchedule.weighted(_BITS, alpha=1.0).probabilities
    uniform = BitSamplingSchedule.uniform(_BITS).probabilities

    def cell(mix: float):
        schedule = BitSamplingSchedule((1.0 - mix) * optimum + mix * uniform)
        est = BasicBitPushing(encoder, schedule=schedule)
        return _normal_make(n_clients), lambda values, rng: float(est.estimate(values, rng).value)

    return {"basic": sweep("basic", mix_fractions, cell, n_reps=n_reps, seed=seed, executor=executor)}


def dropout_adjustment(
    dropout_rates: tuple[float, ...] = (0.0, 0.2, 0.4, 0.6),
    n_clients: int = 5_000,
    n_bits: int = 10,
    n_reps: int = 30,
    seed: int = 509,
    executor: TrialExecutor | None = None,
) -> dict[str, SeriesResult]:
    """Federated adaptive query under dropout, with and without the
    min-reports-per-bit schedule adjustment (Section 4.3)."""
    encoder = FixedPointEncoder.for_integers(n_bits)
    results: dict[str, SeriesResult] = {}
    for label, min_reports in (("adjusted", 20), ("unadjusted", 0)):
        def cell(rate: float, min_reports: int = min_reports):
            def make(rng: np.random.Generator) -> np.ndarray:
                return sample_ages(n_clients, rng)
            def run(values: np.ndarray, rng: np.random.Generator) -> float:
                population = [ClientDevice(i, [v]) for i, v in enumerate(values)]
                query = FederatedMeanQuery(
                    encoder,
                    mode="adaptive",
                    dropout=DropoutModel(rate=rate, jitter=min(0.05, rate / 2) if rate else 0.0),
                    min_reports_per_bit=min_reports,
                )
                return float(query.run(population, rng).value)
            return make, run

        results[label] = sweep(label, dropout_rates, cell, n_reps=n_reps, seed=seed, executor=executor)
    return results
