"""Figure 3: differential-privacy tradeoffs on census data -- Section 4.2.

RMSE (unnormalized, as in the paper) of mean estimation under epsilon-LDP,
split into a high-privacy panel (epsilon < 1) and a moderate-privacy panel
(epsilon >= 1).  The one-bit methods gain their guarantee from randomized
response on the transmitted bit; piecewise is natively LDP.  The paper's
reading: lines cluster on a log scale, ``weighted alpha = 1.0`` generally
wins, adaptivity loses its edge (RR variance is independent of the bit
means), and the Laplace family (off the paper's plots, optional here) is
considerably worse.
"""

from __future__ import annotations

import numpy as np

from repro.data.census import sample_ages
from repro.experiments.methods import mean_methods
from repro.metrics.execution import TrialExecutor
from repro.metrics.experiment import SeriesResult, sweep

__all__ = ["figure_3a", "figure_3b", "DP_METHODS", "HIGH_PRIVACY_EPSILONS", "MODERATE_EPSILONS"]

#: Methods plotted in the paper's Figure 3 legends.
DP_METHODS = ("dithering", "weighted a=0.5", "weighted a=1.0", "adaptive", "piecewise")
#: Off-plot extras reported alongside (paper: errors 2-3x larger), plus the
#: hybrid piecewise/Duchi mixture from the same Wang et al. paper.
EXTRA_DP_METHODS = ("randomized-rounding", "duchi", "hybrid", "laplace")

HIGH_PRIVACY_EPSILONS = (0.1, 0.2, 0.4, 0.6, 0.8)
MODERATE_EPSILONS = (1.0, 1.5, 2.0, 3.0, 4.0, 5.0)

#: Census ages fit in 7 bits; the paper reports with a modest slack bit.
DP_CENSUS_BITS = 8


def _dp_sweep(
    epsilons: tuple[float, ...],
    n_clients: int,
    n_bits: int,
    n_reps: int,
    seed: int,
    include_extras: bool,
    executor: TrialExecutor | None = None,
) -> dict[str, SeriesResult]:
    labels = DP_METHODS + (EXTRA_DP_METHODS if include_extras else ())
    results: dict[str, SeriesResult] = {}
    for label in labels:
        def cell(epsilon: float, label: str = label):
            method = mean_methods(n_bits, epsilon=epsilon, include=[label])[label]
            def make(rng: np.random.Generator) -> np.ndarray:
                return sample_ages(n_clients, rng)
            return make, method

        results[label] = sweep(label, epsilons, cell, n_reps=n_reps, seed=seed, executor=executor)
    return results


def figure_3a(
    epsilons: tuple[float, ...] = HIGH_PRIVACY_EPSILONS,
    n_clients: int = 10_000,
    n_bits: int = DP_CENSUS_BITS,
    n_reps: int = 100,
    seed: int = 301,
    include_extras: bool = False,
    executor: TrialExecutor | None = None,
) -> dict[str, SeriesResult]:
    """RMSE vs epsilon in the high-privacy regime (epsilon < 1)."""
    return _dp_sweep(epsilons, n_clients, n_bits, n_reps, seed, include_extras, executor)


def figure_3b(
    epsilons: tuple[float, ...] = MODERATE_EPSILONS,
    n_clients: int = 10_000,
    n_bits: int = DP_CENSUS_BITS,
    n_reps: int = 100,
    seed: int = 302,
    include_extras: bool = False,
    executor: TrialExecutor | None = None,
) -> dict[str, SeriesResult]:
    """RMSE vs epsilon in the moderate-privacy regime (epsilon >= 1)."""
    return _dp_sweep(epsilons, n_clients, n_bits, n_reps, seed, include_extras, executor)
