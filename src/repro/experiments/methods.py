"""Method registry shared by every figure.

Each figure compares the same handful of estimators, so they are built in
one place: given a bit depth (which also fixes the ``[0, 2**b - 1]`` range
the baselines assume) and an optional epsilon, return a mapping of
method label -> ``(values, rng) -> float`` callables ready for
:func:`repro.metrics.run_trials`.

Labels follow the paper's legends: ``dithering``, ``weighted a=0.5``,
``weighted a=1.0``, ``adaptive``, ``piecewise``, plus the off-plot extras
``duchi``, ``randomized-rounding`` and ``laplace``.  The ``a=X`` exponent is
the paper's ``p_j \\propto 2**(alpha j)`` family: ``a=1.0`` is the Eq. 7
worst-case optimum (and the randomized-response optimum), ``a=0.5`` the
flatter allocation.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.baselines import (
    DuchiMechanism,
    HybridMechanism,
    LaplaceMean,
    PiecewiseMechanism,
    RandomizedRounding,
    SubtractiveDithering,
)
from repro.core import (
    AdaptiveBitPushing,
    BasicBitPushing,
    BitSamplingSchedule,
    FixedPointEncoder,
    VarianceEstimator,
    central_assignment,
    collect_bit_reports,
)
from repro.exceptions import ConfigurationError
from repro.privacy import RandomizedResponse
from repro.privacy.distributed import BernoulliNoiseAggregator, SampleAndThreshold

__all__ = [
    "MeanMethod",
    "mean_methods",
    "variance_methods",
    "distributed_mean_estimate",
    "PAPER_MEAN_METHODS",
]

#: An estimator callable: (values, rng) -> point estimate.
MeanMethod = Callable[[np.ndarray, np.random.Generator], float]

#: The methods plotted in the paper's accuracy figures, in legend order.
PAPER_MEAN_METHODS = ("dithering", "weighted a=0.5", "weighted a=1.0", "adaptive")


def _encoder(n_bits: int) -> FixedPointEncoder:
    return FixedPointEncoder.for_integers(n_bits)


def mean_methods(
    n_bits: int,
    epsilon: float | None = None,
    include: Sequence[str] = PAPER_MEAN_METHODS,
    adaptive_squash_multiple: float = 0.0,
) -> dict[str, MeanMethod]:
    """Build the labelled mean estimators for one figure cell.

    Parameters
    ----------
    n_bits:
        Bit depth; the baselines assume the matching range ``[0, 2**b - 1]``.
    epsilon:
        ``None`` for the accuracy experiments (Figures 1-2); a float applies
        randomized response / the native LDP mechanisms (Figures 3-4).
    include:
        Which labels to build (order preserved).
    adaptive_squash_multiple:
        Squash threshold (in DP-noise multiples) for the adaptive method;
        only valid with ``epsilon`` set.
    """
    high = float(2**n_bits - 1)
    rr = RandomizedResponse(epsilon=epsilon) if epsilon is not None else None
    methods: dict[str, MeanMethod] = {}
    for label in include:
        if label == "dithering":
            baseline = SubtractiveDithering(0.0, high, epsilon=epsilon)
            methods[label] = _wrap(baseline.estimate)
        elif label.startswith("weighted"):
            alpha = float(label.split("=")[1])
            est = BasicBitPushing(
                _encoder(n_bits),
                schedule=BitSamplingSchedule.weighted(n_bits, alpha=alpha),
                perturbation=rr,
            )
            methods[label] = _wrap(est.estimate, batch=est.estimate_batch)
        elif label == "adaptive":
            est = AdaptiveBitPushing(
                _encoder(n_bits),
                perturbation=rr,
                squash_multiple=adaptive_squash_multiple if rr is not None else 0.0,
            )
            methods[label] = _wrap(est.estimate)
        elif label == "piecewise":
            if epsilon is None:
                raise ConfigurationError("piecewise is an LDP mechanism; epsilon required")
            methods[label] = _wrap(PiecewiseMechanism(0.0, high, epsilon).estimate)
        elif label == "duchi":
            if epsilon is None:
                raise ConfigurationError("duchi is an LDP mechanism; epsilon required")
            methods[label] = _wrap(DuchiMechanism(0.0, high, epsilon).estimate)
        elif label == "hybrid":
            if epsilon is None:
                raise ConfigurationError("hybrid is an LDP mechanism; epsilon required")
            methods[label] = _wrap(HybridMechanism(0.0, high, epsilon).estimate)
        elif label == "randomized-rounding":
            methods[label] = _wrap(RandomizedRounding(0.0, high, epsilon=epsilon).estimate)
        elif label == "laplace":
            if epsilon is None:
                raise ConfigurationError("laplace is an LDP mechanism; epsilon required")
            methods[label] = _wrap(LaplaceMean(0.0, high, epsilon).estimate)
        else:
            raise ConfigurationError(f"unknown method label {label!r}")
    return methods


def _wrap(estimate: Callable, batch: Callable | None = None) -> MeanMethod:
    def run(values: np.ndarray, rng: np.random.Generator) -> float:
        return float(estimate(values, rng).value)

    if batch is not None:
        # Advertise the vectorized kernel; the execution engine dispatches
        # to it when repetition populations share a shape (bit-identical to
        # the scalar path -- see repro.metrics.execution).
        run.estimate_batch = batch
    return run


def variance_methods(
    n_bits: int,
    include: Sequence[str] = PAPER_MEAN_METHODS,
) -> dict[str, MeanMethod]:
    """Variance estimators matching the paper's Figure 1b/2b legends.

    Bit-pushing variants use :class:`VarianceEstimator` (centered
    decomposition) with the matching inner engine; the dithering variant
    estimates ``E[X]`` and ``E[X^2]`` with two dithering runs over the
    squared range -- the only option for a method that cannot adapt.
    """
    high = float(2**n_bits - 1)
    methods: dict[str, MeanMethod] = {}
    for label in include:
        if label == "dithering":
            methods[label] = _dithering_variance(high)
        elif label.startswith("weighted"):
            alpha = float(label.split("=")[1])
            methods[label] = _weighted_variance(n_bits, alpha)
        elif label == "adaptive":
            est = VarianceEstimator(_encoder(n_bits), method="centered", inner="adaptive")
            methods[label] = _wrap(est.estimate)
        else:
            raise ConfigurationError(f"unknown variance method label {label!r}")
    return methods


def _weighted_variance(n_bits: int, alpha: float) -> MeanMethod:
    """Centered variance estimation with fixed-alpha basic bit-pushing.

    The inner basic estimator needs a schedule per phase (the squares phase
    has twice the bits), so the schedule is built inside the inner factory
    rather than passed as a constant.
    """

    class _AlphaBasicFactoryEstimator(VarianceEstimator):
        def _make_inner(self, encoder: FixedPointEncoder) -> BasicBitPushing:
            schedule = BitSamplingSchedule.weighted(encoder.n_bits, alpha=alpha)
            return BasicBitPushing(encoder, schedule=schedule)

    est = _AlphaBasicFactoryEstimator(_encoder(n_bits), method="centered", inner="basic")
    return _wrap(est.estimate)


def _dithering_variance(high: float) -> MeanMethod:
    """Variance via two subtractive-dithering mean estimates (moments form)."""

    def run(values: np.ndarray, rng: np.random.Generator) -> float:
        values = np.asarray(values, dtype=np.float64)
        half = values.size // 2
        order = rng.permutation(values.size)
        first, second = values[order[:half]], values[order[half:]]
        mean_est = SubtractiveDithering(0.0, high).estimate(first, rng).value
        sq_est = SubtractiveDithering(0.0, high**2).estimate(second**2, rng).value
        return sq_est - mean_est**2

    return run


def distributed_mean_estimate(
    values: np.ndarray,
    n_bits: int,
    mechanism: BernoulliNoiseAggregator | SampleAndThreshold,
    rng: np.random.Generator,
    alpha: float = 1.0,
) -> float:
    """Mean estimation with distributed DP applied to the bit histograms.

    Runs one noise-free bit-pushing round (the reports are protected by the
    secure-aggregation boundary), then privatizes the per-bit counters with
    the given distributed mechanism before reconstruction (Section 3.3
    "Distributed privacy guarantees").
    """
    encoder = _encoder(n_bits)
    schedule = BitSamplingSchedule.weighted(n_bits, alpha=alpha)
    encoded = encoder.encode(np.asarray(values, dtype=np.float64))
    assignment = central_assignment(encoded.size, schedule, rng)
    sums, counts = collect_bit_reports(encoded, n_bits, assignment)
    noisy_means = mechanism.privatize_bit_means(sums, counts, rng)
    noisy_means = np.clip(noisy_means, 0.0, 1.0)
    return encoder.mean_from_bit_means(noisy_means)
