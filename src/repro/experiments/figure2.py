"""Figure 2: accuracy on census-style age data -- paper Section 4.1.

Three panels over the human-generated workload (our synthetic census-age
stand-in; see DESIGN.md):

* **2a** mean NRMSE as the cohort size n grows (expected ~n^-1/2 decay;
  a few thousand clients reach ~3% at 10 bits, 10k is comfortably < 1%);
* **2b** variance NRMSE over the same sweep;
* **2c** mean NRMSE as the bit depth grows past the 7 bits ages occupy.
"""

from __future__ import annotations

import numpy as np

from repro.data.census import sample_ages
from repro.experiments.methods import (
    PAPER_MEAN_METHODS,
    mean_methods,
    variance_methods,
)
from repro.metrics.execution import TrialExecutor
from repro.metrics.experiment import SeriesResult, sweep

__all__ = ["figure_2a", "figure_2b", "figure_2c", "DEFAULT_COHORTS", "DEFAULT_BIT_DEPTHS"]

#: Cohort-size sweep (paper: "default number of clients -- 10K").
DEFAULT_COHORTS = (1_000, 2_000, 5_000, 10_000, 20_000, 50_000, 100_000)
#: Bit-depth sweep; ages need 7 bits, the rest is slack.
DEFAULT_BIT_DEPTHS = (7, 8, 10, 12, 14, 16, 18, 20)
#: The paper quotes its census accuracy numbers "for a 10-bit quantity".
CENSUS_BITS = 10


def figure_2a(
    cohorts: tuple[int, ...] = DEFAULT_COHORTS,
    n_bits: int = CENSUS_BITS,
    n_reps: int = 100,
    seed: int = 201,
    executor: TrialExecutor | None = None,
) -> dict[str, SeriesResult]:
    """Census mean NRMSE vs number of clients (Figure 2a)."""
    results: dict[str, SeriesResult] = {}
    for label in PAPER_MEAN_METHODS:
        def cell(n_clients: float, label: str = label):
            method = mean_methods(n_bits, include=[label])[label]
            def make(rng: np.random.Generator) -> np.ndarray:
                return sample_ages(int(n_clients), rng)
            return make, method

        results[label] = sweep(label, cohorts, cell, n_reps=n_reps, seed=seed, executor=executor)
    return results


def figure_2b(
    cohorts: tuple[int, ...] = DEFAULT_COHORTS,
    n_bits: int = CENSUS_BITS,
    n_reps: int = 100,
    seed: int = 202,
    executor: TrialExecutor | None = None,
) -> dict[str, SeriesResult]:
    """Census variance NRMSE vs number of clients (Figure 2b)."""
    results: dict[str, SeriesResult] = {}
    for label in PAPER_MEAN_METHODS:
        def cell(n_clients: float, label: str = label):
            method = variance_methods(n_bits, include=[label])[label]
            def make(rng: np.random.Generator) -> np.ndarray:
                return sample_ages(int(n_clients), rng)
            return make, method

        results[label] = sweep(
            label, cohorts, cell, n_reps=n_reps, seed=seed, executor=executor,
            truth_fn=lambda values: float(np.var(values)),
        )
    return results


def figure_2c(
    n_clients: int = 10_000,
    bit_depths: tuple[int, ...] = DEFAULT_BIT_DEPTHS,
    n_reps: int = 100,
    seed: int = 203,
    executor: TrialExecutor | None = None,
) -> dict[str, SeriesResult]:
    """Census mean NRMSE vs bit depth (Figure 2c)."""
    results: dict[str, SeriesResult] = {}
    for label in PAPER_MEAN_METHODS:
        def cell(n_bits: float, label: str = label):
            method = mean_methods(int(n_bits), include=[label])[label]
            def make(rng: np.random.Generator) -> np.ndarray:
                return sample_ages(n_clients, rng)
            return make, method

        results[label] = sweep(label, bit_depths, cell, n_reps=n_reps, seed=seed, executor=executor)
    return results
