"""Figure 4: bit squashing under differential privacy -- Section 4.2/3.3.

Three panels on synthetic/census data with a deliberately loose 16-bit
encoding under epsilon = 2 randomized response:

* **4a** RMSE as the squash threshold sweeps (expressed, as in the paper,
  in multiples of the expected DP noise): thresholds in the sweet spot cut
  error by orders of magnitude by silencing the noisy empty high bits.
* **4b** the diagnostic histogram behind the heuristic: estimated (debiased)
  bit means for one run -- a dense low-bit region carrying the signal, noise
  fluctuations above it, some estimates escaping [0, 1].
* **4c** RMSE vs bit depth at a fixed threshold: squashing keeps the
  adaptive method flat while every non-squashing method grows with the
  vacuous range.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core import (
    AdaptiveBitPushing,
    BitSamplingSchedule,
    FixedPointEncoder,
    bit_means_from_stats,
    central_assignment,
    collect_bit_reports,
)
from repro.core.squashing import threshold_from_noise_multiple
from repro.data.census import sample_ages
from repro.experiments.methods import mean_methods
from repro.metrics.execution import TrialExecutor
from repro.metrics.experiment import SeriesResult, sweep
from repro.privacy import RandomizedResponse
from repro.rng import ensure_rng

__all__ = [
    "figure_4a",
    "figure_4b",
    "figure_4c",
    "BitMeansSnapshot",
    "DEFAULT_SQUASH_MULTIPLES",
    "DP_BIT_DEPTHS",
]

DEFAULT_SQUASH_MULTIPLES = (0.0, 0.5, 1.0, 2.0, 3.0, 5.0, 8.0, 12.0)
DP_BIT_DEPTHS = (8, 10, 12, 14, 16, 18, 20)
_EPSILON = 2.0
_LOOSE_BITS = 16


def figure_4a(
    multiples: tuple[float, ...] = DEFAULT_SQUASH_MULTIPLES,
    epsilon: float = _EPSILON,
    n_bits: int = _LOOSE_BITS,
    n_clients: int = 10_000,
    n_reps: int = 100,
    seed: int = 401,
    executor: TrialExecutor | None = None,
) -> dict[str, SeriesResult]:
    """RMSE vs squash threshold (in expected-DP-noise multiples), census data.

    Two series: the adaptive method with the swept threshold, and the
    unsquashed ``weighted alpha = 1.0`` reference (the strongest one-round
    method under RR) whose (flat) error shows the improvement factor.
    """
    encoder = FixedPointEncoder.for_integers(n_bits)
    results: dict[str, SeriesResult] = {}

    def adaptive_cell(multiple: float):
        est = AdaptiveBitPushing(
            encoder,
            perturbation=RandomizedResponse(epsilon=epsilon),
            squash_multiple=multiple,
        )
        def make(rng: np.random.Generator) -> np.ndarray:
            return sample_ages(n_clients, rng)
        def run(values: np.ndarray, rng: np.random.Generator) -> float:
            return float(est.estimate(values, rng).value)
        return make, run

    results["adaptive+squash"] = sweep(
        "adaptive+squash", multiples, adaptive_cell, n_reps=n_reps, seed=seed, executor=executor
    )

    def reference_cell(_multiple: float):
        method = mean_methods(n_bits, epsilon=epsilon, include=["weighted a=1.0"])[
            "weighted a=1.0"
        ]
        def make(rng: np.random.Generator) -> np.ndarray:
            return sample_ages(n_clients, rng)
        return make, method

    results["weighted a=1.0 (no squash)"] = sweep(
        "weighted a=1.0 (no squash)", multiples, reference_cell, n_reps=n_reps, seed=seed, executor=executor
    )
    return results


@dataclass(frozen=True)
class BitMeansSnapshot:
    """One noisy run's estimated bit means, for the Figure 4b histogram."""

    bit_means: np.ndarray
    true_bit_means: np.ndarray
    counts: np.ndarray
    threshold: float
    epsilon: float

    @property
    def noisy_bits(self) -> np.ndarray:
        """Indices whose estimate falls below the threshold (squash targets)."""
        return np.flatnonzero(self.bit_means < self.threshold)

    @property
    def out_of_unit_bits(self) -> np.ndarray:
        """Indices whose debiased estimate escaped [0, 1] (pure DP noise)."""
        return np.flatnonzero((self.bit_means < 0.0) | (self.bit_means > 1.0))


def figure_4b(
    epsilon: float = _EPSILON,
    n_bits: int = _LOOSE_BITS,
    n_clients: int = 10_000,
    threshold: float = 0.05,
    seed: int = 402,
) -> BitMeansSnapshot:
    """Estimated bit means for one noisy run (Figure 4b's histogram).

    Uses a uniform schedule so every bit index gets equal evidence -- the
    clearest view of where signal ends and DP noise begins.
    """
    gen = ensure_rng(seed)
    values = sample_ages(n_clients, gen)
    encoder = FixedPointEncoder.for_integers(n_bits)
    rr = RandomizedResponse(epsilon=epsilon)
    schedule = BitSamplingSchedule.uniform(n_bits)
    encoded = encoder.encode(values)
    assignment = central_assignment(n_clients, schedule, gen)
    sums, counts = collect_bit_reports(encoded, n_bits, assignment, rr, gen)
    means = bit_means_from_stats(sums, counts, rr)
    return BitMeansSnapshot(
        bit_means=means,
        true_bit_means=encoder.true_bit_means(values),
        counts=counts,
        threshold=threshold,
        epsilon=epsilon,
    )


def figure_4c(
    bit_depths: tuple[int, ...] = DP_BIT_DEPTHS,
    epsilon: float = _EPSILON,
    n_clients: int = 10_000,
    squash_multiple: float = 2.0,
    n_reps: int = 100,
    seed: int = 403,
    executor: TrialExecutor | None = None,
) -> dict[str, SeriesResult]:
    """RMSE vs bit depth under epsilon = 2 (Figure 4c).

    The adaptive-with-squashing series should stay level while the
    non-squashing methods grow roughly with ``2**b``.
    """
    labels = ("dithering", "weighted a=0.5", "weighted a=1.0", "piecewise")
    results: dict[str, SeriesResult] = {}
    for label in labels:
        def cell(n_bits: float, label: str = label):
            method = mean_methods(int(n_bits), epsilon=epsilon, include=[label])[label]
            def make(rng: np.random.Generator) -> np.ndarray:
                return sample_ages(n_clients, rng)
            return make, method

        results[label] = sweep(label, bit_depths, cell, n_reps=n_reps, seed=seed, executor=executor)

    def squash_cell(n_bits: float):
        est = AdaptiveBitPushing(
            FixedPointEncoder.for_integers(int(n_bits)),
            perturbation=RandomizedResponse(epsilon=epsilon),
            squash_multiple=squash_multiple,
        )
        def make(rng: np.random.Generator) -> np.ndarray:
            return sample_ages(n_clients, rng)
        def run(values: np.ndarray, rng: np.random.Generator) -> float:
            return float(est.estimate(values, rng).value)
        return make, run

    results["adaptive+squash"] = sweep(
        "adaptive+squash", bit_depths, squash_cell, n_reps=n_reps, seed=seed, executor=executor
    )
    return results


def squash_threshold_for(multiple: float, epsilon: float, n_clients: int, n_bits: int) -> float:
    """Absolute squash threshold implied by a noise multiple (for reporting).

    Approximates per-bit counts by the uniform share ``n / b``.
    """
    counts = np.full(n_bits, n_clients / n_bits)
    return threshold_from_noise_multiple(multiple, epsilon, counts)
