"""Rendering experiment results as the paper-style tables.

The paper presents line plots; headless reproduction prints the same series
as markdown tables -- one row per x-value, one column per method, each cell
``value +/- stderr``.  These renderers are shared by the CLI, the benchmark
harness, and the EXPERIMENTS.md generator, so every surface reports
identically.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.figure4 import BitMeansSnapshot
from repro.metrics.experiment import SeriesResult

__all__ = ["render_series_table", "render_snapshot", "format_measure"]


def format_measure(value: float, stderr: float) -> str:
    """Compact ``value +/- stderr`` with sensible significant figures."""
    if not np.isfinite(value):
        return "inf"
    return f"{value:.4g} ± {stderr:.2g}"


def render_series_table(
    title: str,
    results: dict[str, SeriesResult],
    metric: str = "nrmse",
    x_name: str = "x",
) -> str:
    """Render a figure's series as one markdown table.

    All series must share their x-grid (they do by construction: every
    method sweeps the same parameter values).
    """
    if not results:
        raise ValueError("no series to render")
    labels = list(results)
    xs = results[labels[0]].x
    for label in labels[1:]:
        if results[label].x != xs:
            raise ValueError(f"series {label!r} has a different x-grid")

    lines = [f"### {title}", ""]
    lines.append("| " + " | ".join([x_name] + labels) + " |")
    lines.append("|" + "---|" * (len(labels) + 1))
    rows_by_label = {label: results[label].rows(metric) for label in labels}
    for i, x in enumerate(xs):
        cells = [_format_x(x)]
        for label in labels:
            _, value, stderr = rows_by_label[label][i]
            cells.append(format_measure(value, stderr))
        lines.append("| " + " | ".join(cells) + " |")
    lines.append("")
    return "\n".join(lines)


def _format_x(x: float) -> str:
    if float(x).is_integer():
        return str(int(x))
    return f"{x:g}"


def render_snapshot(snapshot: BitMeansSnapshot, title: str = "Figure 4b") -> str:
    """Render the Figure 4b bit-means diagnostic as a table.

    Columns: bit index, report count, true bit mean, noisy estimate, and
    whether the squash threshold would silence it.
    """
    lines = [f"### {title} (epsilon={snapshot.epsilon:g}, threshold={snapshot.threshold:g})", ""]
    lines.append("| bit | reports | true mean | estimated mean | squashed? |")
    lines.append("|---|---|---|---|---|")
    for j, (count, true_m, est_m) in enumerate(
        zip(snapshot.counts, snapshot.true_bit_means, snapshot.bit_means)
    ):
        squashed = "yes" if est_m < snapshot.threshold else ""
        flag = " (!)" if est_m < 0.0 or est_m > 1.0 else ""
        lines.append(
            f"| {j} | {int(count)} | {true_m:.4f} | {est_m:+.4f}{flag} | {squashed} |"
        )
    lines.append("")
    lines.append(
        f"Bits outside [0, 1]: {snapshot.out_of_unit_bits.tolist()}; "
        f"bits below threshold: {snapshot.noisy_bits.tolist()}."
    )
    lines.append("")
    return "\n".join(lines)
