"""Rendering experiment results as the paper-style tables.

The paper presents line plots; headless reproduction prints the same series
as markdown tables -- one row per x-value, one column per method, each cell
``value +/- stderr``.  These renderers are shared by the CLI, the benchmark
harness, and the EXPERIMENTS.md generator, so every surface reports
identically.
"""

from __future__ import annotations

import json

import numpy as np

from repro.experiments.figure4 import BitMeansSnapshot
from repro.metrics.experiment import SeriesResult

__all__ = [
    "render_series_table",
    "render_snapshot",
    "format_measure",
    "series_to_json",
    "snapshot_to_json",
]


def format_measure(value: float, stderr: float) -> str:
    """Compact ``value +/- stderr`` with sensible significant figures."""
    if not np.isfinite(value):
        return "inf"
    return f"{value:.4g} ± {stderr:.2g}"


def render_series_table(
    title: str,
    results: dict[str, SeriesResult],
    metric: str = "nrmse",
    x_name: str = "x",
) -> str:
    """Render a figure's series as one markdown table.

    All series must share their x-grid (they do by construction: every
    method sweeps the same parameter values).
    """
    if not results:
        raise ValueError("no series to render")
    labels = list(results)
    xs = results[labels[0]].x
    for label in labels[1:]:
        if results[label].x != xs:
            raise ValueError(f"series {label!r} has a different x-grid")

    lines = [f"### {title}", ""]
    lines.append("| " + " | ".join([x_name] + labels) + " |")
    lines.append("|" + "---|" * (len(labels) + 1))
    rows_by_label = {label: results[label].rows(metric) for label in labels}
    for i, x in enumerate(xs):
        cells = [_format_x(x)]
        for label in labels:
            _, value, stderr = rows_by_label[label][i]
            cells.append(format_measure(value, stderr))
        lines.append("| " + " | ".join(cells) + " |")
    lines.append("")
    return "\n".join(lines)


def _format_x(x: float) -> str:
    if float(x).is_integer():
        return str(int(x))
    return f"{x:g}"


def series_to_json(
    title: str,
    results: dict[str, SeriesResult],
    metric: str = "nrmse",
    x_name: str = "x",
) -> str:
    """The machine-readable twin of :func:`render_series_table`.

    One JSON object: figure identity plus, per method, parallel ``x`` /
    ``value`` / ``stderr`` arrays -- the same numbers the markdown table
    prints, consumable by the same tooling that reads trace/metrics JSONL.
    """
    if not results:
        raise ValueError("no series to render")
    payload = {
        "title": title,
        "metric": metric,
        "x_name": x_name,
        "series": {
            label: {
                "x": [x for x, _, _ in series.rows(metric)],
                "value": [value for _, value, _ in series.rows(metric)],
                "stderr": [stderr for _, _, stderr in series.rows(metric)],
            }
            for label, series in results.items()
        },
    }
    return json.dumps(payload, indent=2)


def snapshot_to_json(snapshot: BitMeansSnapshot, title: str = "Figure 4b") -> str:
    """JSON form of the Figure 4b bit-means diagnostic."""
    payload = {
        "title": title,
        "epsilon": snapshot.epsilon,
        "threshold": snapshot.threshold,
        "counts": [int(c) for c in snapshot.counts],
        "true_bit_means": [float(m) for m in snapshot.true_bit_means],
        "bit_means": [float(m) for m in snapshot.bit_means],
        "out_of_unit_bits": snapshot.out_of_unit_bits.tolist(),
        "noisy_bits": snapshot.noisy_bits.tolist(),
    }
    return json.dumps(payload, indent=2)


def render_snapshot(snapshot: BitMeansSnapshot, title: str = "Figure 4b") -> str:
    """Render the Figure 4b bit-means diagnostic as a table.

    Columns: bit index, report count, true bit mean, noisy estimate, and
    whether the squash threshold would silence it.
    """
    lines = [f"### {title} (epsilon={snapshot.epsilon:g}, threshold={snapshot.threshold:g})", ""]
    lines.append("| bit | reports | true mean | estimated mean | squashed? |")
    lines.append("|---|---|---|---|---|")
    for j, (count, true_m, est_m) in enumerate(
        zip(snapshot.counts, snapshot.true_bit_means, snapshot.bit_means)
    ):
        squashed = "yes" if est_m < snapshot.threshold else ""
        flag = " (!)" if est_m < 0.0 or est_m > 1.0 else ""
        lines.append(
            f"| {j} | {int(count)} | {true_m:.4f} | {est_m:+.4f}{flag} | {squashed} |"
        )
    lines.append("")
    lines.append(
        f"Bits outside [0, 1]: {snapshot.out_of_unit_bits.tolist()}; "
        f"bits below threshold: {snapshot.noisy_bits.tolist()}."
    )
    lines.append("")
    return "\n".join(lines)
