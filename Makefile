# Convenience targets for the bit-pushing reproduction.

.PHONY: install test bench figures experiments examples clean

install:
	pip install -e .[dev]

test:
	pytest tests/

bench:
	pytest benchmarks/ --benchmark-only

# Reproduce every paper figure at full scale (tables to stdout).
figures:
	@for panel in 1a 1b 1c 2a 2b 2c 3a 3b 4a 4b 4c; do \
		python -m repro.cli figure $$panel; \
	done

# Rebuild EXPERIMENTS.md (paper-vs-measured, full scale; a few minutes).
experiments:
	python -m repro.experiments.generate

examples:
	@for script in examples/*.py; do \
		echo "== $$script"; python $$script; \
	done

clean:
	rm -rf .pytest_cache benchmarks/results src/*.egg-info
	find . -name __pycache__ -type d -exec rm -rf {} +
