# Convenience targets for the bit-pushing reproduction.

.PHONY: install test lint selfcheck bench bench-check bench-scale report-demo health-demo serve-demo serve-trace-demo figures experiments examples clean

install:
	pip install -e .[dev]

test:
	pytest tests/

lint:
	ruff check .
	ruff format --check src/repro/observability scripts \
		tests/test_observability.py tests/test_observability_integration.py \
		tests/test_wire_roundtrip.py
	python scripts/lint_rng.py src/repro

# Statistical invariants + plaintext-oracle differential tests (quick tier).
# `make selfcheck DEEP=1` runs the full deep tier (~3 s).
selfcheck:
	python -m repro.cli selfcheck $(if $(DEEP),--deep)

# Timed bench run; the raw pytest-benchmark report is reduced to the
# repo-root BENCH_micro.json trajectory file future PRs diff against.
bench:
	pytest benchmarks/ --benchmark-only -s \
		--benchmark-json=benchmarks/results/benchmark.json
	python scripts/bench_summary.py benchmarks/results/benchmark.json BENCH_micro.json

# Perf regression gate: re-run the micro benches, append to the trajectory,
# then fail if the newest entry regressed past the tolerance against the
# previous entry (same-machine comparison, so the strict default applies).
bench-check: bench
	python scripts/bench_summary.py --check BENCH_micro.json

# Scale studies at full size: the columnar client plane (10**5..10**7
# clients -- clients/sec per population size, object-path speedup,
# tracemalloc peak), the secure-aggregation hierarchy (vectorized
# masking vs the per-client submit loop at 10**4 clients), and the
# wire-served round (loopback TCP reports/sec, single and concurrent
# campaigns).  Appends to the repo-root BENCH_scale.json trajectory,
# then gates on it: the run fails if any shared throughput rate dropped
# past the tolerance vs the previous entry.
bench-scale:
	REPRO_SCALE_CLIENTS=100000,1000000,10000000 \
		pytest benchmarks/bench_scale.py -k "columnar or secure or served" --benchmark-only -s
	python scripts/bench_summary.py --scale benchmarks/results/scale.json BENCH_scale.json
	python scripts/bench_summary.py --check --scale BENCH_scale.json

# Record one deterministic flight-recorder run and render its report --
# the quickest way to see the whole observability surface end to end.
report-demo:
	python -m repro.cli trace 1a --quick --seed 7 --sim-clock --record out/report-demo
	python -m repro.cli report out/report-demo

# Scripted chaos campaigns: the retry-storm alert must fire during the
# fault burst and resolve over the clean tail, and the secure campaign's
# shard blackout must degrade (not abort) its round with the shard-failure
# alert firing and resolving -- or the target fails.
health-demo:
	python scripts/health_demo.py --assert-retry-storm --assert-shard-failure

# Served-round smoke: a lossless loopback round must be bit-identical to
# the in-process FederatedMeanQuery twin, and a lossy round with
# adversarial clients must match its in-process estimate with every bad
# uplink rejected and accounted for -- or the target fails.
serve-demo:
	python scripts/serve_demo.py

# Distributed-tracing smoke: a served round under simulated clocks must
# ingest telemetry from every fleet client, merge all remote spans under
# the server's deterministic round trace id, and export a valid Chrome
# trace-event timeline (out/serve_trace_demo/trace.json) -- or the target
# fails.  Open the JSON in Perfetto / chrome://tracing to browse it.
serve-trace-demo:
	python scripts/serve_trace_demo.py

# Reproduce every paper figure at full scale (tables to stdout).
figures:
	@for panel in 1a 1b 1c 2a 2b 2c 3a 3b 4a 4b 4c; do \
		python -m repro.cli figure $$panel; \
	done

# Rebuild EXPERIMENTS.md (paper-vs-measured, full scale; a few minutes).
experiments:
	python -m repro.experiments.generate

examples:
	@for script in examples/*.py; do \
		echo "== $$script"; python $$script; \
	done

clean:
	rm -rf .pytest_cache benchmarks/results src/*.egg-info
	find . -name __pycache__ -type d -exec rm -rf {} +
