"""Setuptools shim.

The canonical metadata lives in ``pyproject.toml``; this file exists so that
legacy editable installs (``pip install -e . --no-use-pep517``) work in
offline environments whose setuptools predates PEP 660 wheel-less editables.
"""

from setuptools import setup

setup()
